// Package cluster implements the point-cloud clustering algorithms
// discussed in Section IV of the paper: DBSCAN with a fixed ε, the
// proposed adaptive-ε DBSCAN (per-capture ε from the k-nearest-neighbor
// elbow), single-linkage hierarchical clustering, k-means, and Gaussian
// mixture clustering. HAWC-CC uses adaptive DBSCAN; the rest are the
// baselines of Table IV.
//
// The density-based algorithms run against internal/spatial's
// NeighborIndex: by default a uniform voxel grid built once per frame and
// shared by the adaptive-ε kNN curve, the structure-gap coarse pass, and
// DBSCAN expansion (Scratch, GridIndex); the k-d tree engine
// (KDTreeIndex) remains available as the equivalence reference and
// benchmark baseline, rebuilding per sub-pass the way the pre-grid
// pipeline did. Both engines produce identical labels — see the
// neighbor-ordering contract in internal/kdtree — which the property
// tests in this package pin.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"hawccc/internal/geom"
	"hawccc/internal/kdtree"
	"hawccc/internal/knee"
	"hawccc/internal/spatial"
)

// Noise is the label assigned to points not belonging to any cluster.
const Noise = -1

// Result holds a clustering of a point cloud.
type Result struct {
	// Labels[i] is the cluster id of cloud point i, or Noise.
	Labels []int
	// NumClusters is the number of distinct non-noise clusters.
	NumClusters int
	// Epsilon is the neighborhood radius that produced this result, when
	// the algorithm is density-based (0 otherwise).
	Epsilon float64
	// Sizes[c], when non-nil, is the point count of cluster c. The
	// density-based algorithms precount sizes so Clusters/ClustersInto can
	// materialize sub-clouds at exact capacity; algorithms that don't
	// precount leave it nil and materialization falls back to pure append.
	Sizes []int
}

// Clusters materializes the clustered sub-clouds, dropping noise points.
// Cluster i of the result holds the points labeled i.
func (r Result) Clusters(cloud geom.Cloud) []geom.Cloud {
	if len(r.Labels) != len(cloud) {
		panic(fmt.Sprintf("cluster: labels/cloud length mismatch %d vs %d", len(r.Labels), len(cloud)))
	}
	out := make([]geom.Cloud, r.NumClusters)
	if r.Sizes != nil {
		for c := range out {
			out[c] = make(geom.Cloud, 0, r.Sizes[c])
		}
	}
	for i, lbl := range r.Labels {
		if lbl == Noise {
			continue
		}
		out[lbl] = append(out[lbl], cloud[i])
	}
	return out
}

// ClustersInto materializes the clustered sub-clouds like Clusters, but
// reuses dst: the returned slice recycles dst's header and, where
// capacity allows, the backing arrays of its cloud entries. Streaming
// callers pass each frame's buffer back in, so steady-state cluster
// materialization stops allocating once the buffers have grown to
// match the traffic. When the result carries precounted Sizes, an entry
// that must grow is allocated at exact capacity up front instead of
// through append's doubling. Points and their order are exactly
// Clusters'; the returned clouds alias dst's storage, so the caller must
// not reuse dst until it is done with them.
func (r Result) ClustersInto(cloud geom.Cloud, dst []geom.Cloud) []geom.Cloud {
	if len(r.Labels) != len(cloud) {
		panic(fmt.Sprintf("cluster: labels/cloud length mismatch %d vs %d", len(r.Labels), len(cloud)))
	}
	if cap(dst) < r.NumClusters {
		grown := make([]geom.Cloud, r.NumClusters)
		copy(grown, dst[:cap(dst)])
		dst = grown
	} else {
		dst = dst[:r.NumClusters]
	}
	for i := range dst {
		dst[i] = dst[i][:0]
		if r.Sizes != nil && cap(dst[i]) < r.Sizes[i] {
			dst[i] = make(geom.Cloud, 0, r.Sizes[i])
		}
	}
	for i, lbl := range r.Labels {
		if lbl == Noise {
			continue
		}
		dst[lbl] = append(dst[lbl], cloud[i])
	}
	return dst
}

// NoiseCount returns the number of points labeled Noise.
func (r Result) NoiseCount() int {
	n := 0
	for _, l := range r.Labels {
		if l == Noise {
			n++
		}
	}
	return n
}

// IndexKind selects the spatial index engine a Scratch runs density
// queries against.
// kthDister is the optional index fast path for the ε curve: the exact
// squared distance to a point's k-th neighbor, without materializing
// the neighbors. spatial.Grid implements it; KthFast reports whether
// the direct answer actually beats a scratch-buffered kNN query here.
type kthDister interface {
	KthFast(k int) bool
	KthDist2All(dst []float64, k int)
}

type IndexKind int

const (
	// GridIndex (the default) is the voxel grid of internal/spatial,
	// built once per top-level call and shared by every sub-pass: the
	// adaptive-ε kNN curve, the structure-gap coarse DBSCAN (whose result
	// is reused when the final ε lands on the fallback), and the final
	// expansion.
	GridIndex IndexKind = iota
	// KDTreeIndex is the k-d tree engine, faithful to the pre-grid
	// pipeline's cost structure: a fresh tree per sub-pass and no
	// coarse-result reuse. It produces identical labels to GridIndex and
	// serves as the equivalence reference and benchmark baseline.
	KDTreeIndex
)

// Scratch holds the reusable state of the density-based clustering path:
// the per-frame spatial index plus every working buffer DBSCAN and the
// adaptive-ε search need. A zero Scratch is ready to use (GridIndex).
// Reusing one Scratch across frames makes the steady state
// allocation-free once the buffers have grown to the traffic.
//
// Results returned by Scratch methods alias the Scratch's buffers:
// Labels and Sizes are valid only until the Scratch's next use. Callers
// that retain results across frames (or the package-level convenience
// functions, which use a throwaway Scratch) get freshly allocated
// buffers by construction. A Scratch is not safe for concurrent use.
type Scratch struct {
	// Kind selects the index engine; the zero value is GridIndex.
	Kind IndexKind

	grid spatial.Grid

	// Query and expansion buffers.
	nbuf    []int
	knnb    []spatial.Neighbor
	queue   []int
	visited []bool
	labels  []int
	sizes   []int
	dists   []float64

	// Coarse-pass cache: structureGap's DBSCAN at the fallback ε, kept so
	// Adaptive can return it directly when the final ε is the fallback —
	// the fallback-ε pass is then paid once per frame instead of twice.
	coarseValid  bool
	coarseEps    float64
	coarseMinPts int
	coarseNum    int
	coarseLabels []int
	coarseSizes  []int

	// structureGap working buffers.
	sums      []geom.Point3
	centroids geom.Cloud
	gaps      []float64
}

// pointsView is the minimal point-source abstraction the density
// algorithms need: either an array-of-structs cloud or a
// structure-of-arrays one. The branch sits at query-issue granularity
// (once per point visited), not inside the distance loops, which stay in
// internal/spatial.
type pointsView struct {
	aos geom.Cloud
	soa *geom.CloudSoA
}

func viewOf(cloud geom.Cloud) pointsView        { return pointsView{aos: cloud} }
func viewOfSoA(cloud *geom.CloudSoA) pointsView { return pointsView{soa: cloud} }

func (v pointsView) len() int {
	if v.soa != nil {
		return v.soa.Len()
	}
	return len(v.aos)
}

func (v pointsView) at(i int) geom.Point3 {
	if v.soa != nil {
		return v.soa.At(i)
	}
	return v.aos[i]
}

// index builds the query engine for one sub-pass over cloud. GridIndex
// rebuilds the scratch-owned grid in place (allocation-free in steady
// state) with the given cell edge; KDTreeIndex allocates a fresh tree,
// reproducing the pre-grid pipeline it benchmarks against.
func (s *Scratch) index(cloud geom.Cloud, cell float64) spatial.NeighborIndex {
	if s.Kind == KDTreeIndex {
		return kdtree.New(cloud)
	}
	s.grid.Reset(cloud, cell)
	return &s.grid
}

// indexSoA is index for a structure-of-arrays cloud. The SoA path runs
// only on the voxel-grid engine — the k-d tree copies points internally
// and exists as the AoS equivalence baseline.
func (s *Scratch) indexSoA(cloud *geom.CloudSoA, cell float64) spatial.NeighborIndex {
	if s.Kind == KDTreeIndex {
		panic("cluster: SoA clustering requires GridIndex")
	}
	s.grid.ResetSoA(cloud, cell)
	return &s.grid
}

// DBSCAN clusters the cloud with the classic density-based algorithm:
// a point is a core point when at least minPts points (itself included)
// lie within eps; clusters are the connected components of core points
// plus their border neighbors. The voxel-grid engine makes each region
// query a 27-cell scan (Ester et al. 1996), so a frame clusters in
// near-linear time.
func DBSCAN(cloud geom.Cloud, eps float64, minPts int) Result {
	var s Scratch
	return s.DBSCAN(cloud, eps, minPts)
}

// DBSCAN is the Scratch-backed form of the package-level DBSCAN: same
// labels, but the index and every working buffer come from the Scratch.
// The result aliases the Scratch's buffers (see Scratch).
func (s *Scratch) DBSCAN(cloud geom.Cloud, eps float64, minPts int) Result {
	if len(cloud) == 0 || eps <= 0 || minPts < 1 {
		return s.degenerate(len(cloud), eps)
	}
	return s.dbscan(s.index(cloud, eps), viewOf(cloud), eps, minPts)
}

// DBSCANSoA clusters a structure-of-arrays cloud. Labels are identical
// to DBSCAN over the widened cloud (the float32→float64 widening is
// exact); requires GridIndex.
func DBSCANSoA(cloud *geom.CloudSoA, eps float64, minPts int) Result {
	var s Scratch
	return s.DBSCANSoA(cloud, eps, minPts)
}

// DBSCANSoA is the Scratch-backed form of the package-level DBSCANSoA.
func (s *Scratch) DBSCANSoA(cloud *geom.CloudSoA, eps float64, minPts int) Result {
	if cloud.Len() == 0 || eps <= 0 || minPts < 1 {
		return s.degenerate(cloud.Len(), eps)
	}
	return s.dbscan(s.indexSoA(cloud, eps), viewOfSoA(cloud), eps, minPts)
}

// degenerate labels every point noise (empty cloud or nonsensical
// parameters).
func (s *Scratch) degenerate(n int, eps float64) Result {
	s.labels = growInts(s.labels, n)
	for i := range s.labels {
		s.labels[i] = Noise
	}
	return Result{Labels: s.labels, Epsilon: eps}
}

// dbscan runs the expansion against an already-built index.
func (s *Scratch) dbscan(idx spatial.NeighborIndex, pts pointsView, eps float64, minPts int) Result {
	s.labels = growInts(s.labels, pts.len())
	num := s.expand(idx, pts, eps, minPts, s.labels)
	s.sizes = countSizes(s.labels, growInts(s.sizes, num))
	return Result{Labels: s.labels, NumClusters: num, Epsilon: eps, Sizes: s.sizes}
}

// expand runs the DBSCAN expansion over cloud against idx, writing
// cluster ids (or Noise) into labels and returning the cluster count.
// The BFS queue is dequeued by advancing a cursor over a single reused
// buffer — the seed implementation's queue[1:] re-slicing kept the full
// backing array live and degraded to O(n²) copying under adversarial
// expansion orders.
//
// Labels depend only on the neighbor *sets* idx returns, not their
// order: every member of a cluster's queue gets the same id, and the
// visited set of one expansion is the core-reachable component of its
// seed. Any NeighborIndex therefore yields identical labels.
func (s *Scratch) expand(idx spatial.NeighborIndex, pts pointsView, eps float64, minPts int, labels []int) int {
	for i := range labels {
		labels[i] = Noise
	}
	n := pts.len()
	s.visited = growBools(s.visited, n)
	visited := s.visited
	for i := range visited {
		visited[i] = false
	}
	queue := s.queue[:0]
	nbuf := s.nbuf
	next := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		nbuf = idx.RadiusInto(nbuf[:0], pts.at(i), eps)
		if len(nbuf) < minPts {
			continue // noise (may be claimed later as a border point)
		}
		// Start a new cluster and expand it breadth-first.
		labels[i] = next
		queue = append(queue[:0], nbuf...)
		for cur := 0; cur < len(queue); cur++ {
			j := queue[cur]
			if labels[j] == Noise {
				labels[j] = next // border point
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			labels[j] = next
			nbuf = idx.RadiusInto(nbuf[:0], pts.at(j), eps)
			if len(nbuf) >= minPts {
				queue = append(queue, nbuf...)
			}
		}
		next++
	}
	s.queue = queue
	s.nbuf = nbuf
	return next
}

// countSizes tallies per-cluster point counts into sizes, whose length
// is the cluster count.
func countSizes(labels, sizes []int) []int {
	for c := range sizes {
		sizes[c] = 0
	}
	for _, l := range labels {
		if l != Noise {
			sizes[l]++
		}
	}
	return sizes
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// AdaptiveConfig parameterizes adaptive DBSCAN. The zero value is not
// useful; use DefaultAdaptiveConfig.
type AdaptiveConfig struct {
	// K is which nearest neighbor's distance feeds the elbow curve
	// (the paper plots k-NN distances; k = MinPts-1 is the usual choice).
	K int
	// MinPts is DBSCAN's core-point density threshold.
	MinPts int
	// FallbackEps is used when the capture is too small for elbow
	// detection or the band contains no curve values.
	FallbackEps float64
	// MinEps and MaxEps bound the elbow search to the physically
	// meaningful band. Below MinEps a neighborhood cannot span the
	// sensor's beam-row spacing at range, so no body can cohere; above
	// MaxEps a neighborhood exceeds the pedestrian separation scale and
	// merges the scene. The paper observes the same pathology from the
	// unconstrained elbow (Figure 4b: optimal ε up to 9.06) and notes
	// that deployed values must be clamped.
	MinEps, MaxEps float64
}

// DefaultAdaptiveConfig mirrors the deployment configuration described in
// Section IV.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{K: 4, MinPts: 5, FallbackEps: 0.3, MinEps: 0.2, MaxEps: 0.5}
}

// frameCell picks the grid cell edge for one adaptive frame: the
// fallback ε sits inside the [MinEps, MaxEps] band, so one grid at that
// edge serves the kNN curve, the coarse pass, and whatever final ε the
// elbow lands on. A non-positive fallback defers to AutoCell.
func frameCell(cfg AdaptiveConfig) float64 {
	return cfg.FallbackEps
}

// OptimalEpsilon computes the per-capture ε: sort every point's K-th
// nearest-neighbor distance ascending and take the curve value at the
// elbow (paper Section IV), with the elbow search restricted to the
// [MinEps, MaxEps] band. It returns the fallback for degenerate clouds.
func OptimalEpsilon(cloud geom.Cloud, cfg AdaptiveConfig) float64 {
	var s Scratch
	return s.OptimalEpsilon(cloud, cfg)
}

// OptimalEpsilon is the Scratch-backed form of the package-level
// OptimalEpsilon; with GridIndex the kNN curve and the structure-gap
// pass share one grid build.
func (s *Scratch) OptimalEpsilon(cloud geom.Cloud, cfg AdaptiveConfig) float64 {
	s.coarseValid = false
	if cfg.K < 1 || len(cloud) < cfg.K+2 {
		return cfg.FallbackEps
	}
	return s.optimalEpsilon(s.index(cloud, frameCell(cfg)), viewOf(cloud), cfg)
}

// OptimalEpsilonSoA is OptimalEpsilon for a structure-of-arrays cloud;
// requires GridIndex.
func (s *Scratch) OptimalEpsilonSoA(cloud *geom.CloudSoA, cfg AdaptiveConfig) float64 {
	s.coarseValid = false
	if cfg.K < 1 || cloud.Len() < cfg.K+2 {
		return cfg.FallbackEps
	}
	return s.optimalEpsilon(s.indexSoA(cloud, frameCell(cfg)), viewOfSoA(cloud), cfg)
}

// optimalEpsilon runs the elbow search and structural refinement against
// an already-built index.
func (s *Scratch) optimalEpsilon(idx spatial.NeighborIndex, pts pointsView, cfg AdaptiveConfig) float64 {
	n := pts.len()
	dists := growFloats(s.dists, n)
	// The curve only needs each point's k-th neighbor distance, never the
	// neighbor identities; an index that can answer that value directly
	// (the vectorized grid) skips materializing and sorting neighbors.
	// The k-th smallest distance is a property of the point multiset, so
	// both branches produce identical float64 values.
	if kd, ok := idx.(kthDister); ok && kd.KthFast(cfg.K+1) {
		// k+1 because the query point itself sits at distance 0.
		kd.KthDist2All(dists, cfg.K+1)
		for i := 0; i < n; i++ {
			dists[i] = math.Sqrt(dists[i])
		}
	} else {
		knnb := s.knnb
		for i := 0; i < n; i++ {
			knnb = idx.KNNInto(knnb[:0], pts.at(i), cfg.K+1)
			dists[i] = math.Sqrt(knnb[len(knnb)-1].Dist2)
		}
		s.knnb = knnb
	}
	s.dists = dists
	sort.Float64s(dists)
	// Restrict the elbow search to the physical band.
	lo := sort.SearchFloat64s(dists, cfg.MinEps)
	hi := len(dists)
	if cfg.MaxEps > 0 {
		hi = sort.SearchFloat64s(dists, cfg.MaxEps)
	}
	band := dists
	if cfg.MinEps > 0 || cfg.MaxEps > 0 {
		band = dists[lo:hi]
	}
	eps := lastSignificantJump(band, cfg.FallbackEps)
	if eps <= 0 {
		eps = cfg.FallbackEps
	}
	if cfg.MinEps > 0 && eps < cfg.MinEps {
		eps = cfg.MinEps
	}
	if cfg.MaxEps > 0 && eps > cfg.MaxEps {
		eps = cfg.MaxEps
	}
	// Structural refinement: the elbow proposes, the scene's cluster
	// spacing caps. A coarse density pass measures how closely separate
	// structures sit; in crowded captures the gap shrinks and ε must
	// shrink with it or neighbors chain into one cluster. This is the
	// "adjusts to point cloud structure and density" behavior of
	// Section IV operationalized for scenes denser than the training
	// walkway.
	if gap, ok := s.structureGap(idx, pts, cfg); ok {
		cap := gap / 3
		if cap < cfg.MinEps {
			cap = cfg.MinEps
		}
		if eps > cap {
			eps = cap
		}
	}
	return eps
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// structureGap estimates the separation scale between substantial
// structures: a coarse DBSCAN pass at the fallback ε, then the 10th
// percentile of nearest-centroid distances among clusters with at least
// structureMinPts points. ok is false when the scene has fewer than two
// such structures. With GridIndex the coarse result is cached on the
// Scratch so Adaptive can reuse it when the final ε is the fallback.
func (s *Scratch) structureGap(idx spatial.NeighborIndex, pts pointsView, cfg AdaptiveConfig) (float64, bool) {
	const structureMinPts = 15

	// The coarse pass. With the shared grid the expansion runs against
	// the frame index already built; the k-d tree engine rebuilds, as the
	// pre-grid pipeline's nested DBSCAN call did.
	coarseIdx := idx
	if s.Kind == KDTreeIndex {
		coarseIdx = kdtree.New(pts.aos)
	}
	s.coarseLabels = growInts(s.coarseLabels, pts.len())
	num := s.expand(coarseIdx, pts, cfg.FallbackEps, cfg.MinPts, s.coarseLabels)
	s.coarseSizes = countSizes(s.coarseLabels, growInts(s.coarseSizes, num))
	if s.Kind == GridIndex {
		s.coarseValid = true
		s.coarseEps = cfg.FallbackEps
		s.coarseMinPts = cfg.MinPts
		s.coarseNum = num
	}

	if cap(s.sums) < num {
		s.sums = make([]geom.Point3, num)
	}
	sums := s.sums[:num]
	for c := range sums {
		sums[c] = geom.Point3{}
	}
	for i, l := range s.coarseLabels {
		if l != Noise {
			sums[l] = sums[l].Add(pts.at(i))
		}
	}
	centroids := s.centroids[:0]
	for c, cnt := range s.coarseSizes {
		if cnt >= structureMinPts {
			centroids = append(centroids, sums[c].Scale(1/float64(cnt)))
		}
	}
	s.centroids = centroids
	if len(centroids) < 2 {
		return 0, false
	}
	gaps := s.gaps[:0]
	for i, p := range centroids {
		best := math.Inf(1)
		for j, q := range centroids {
			if i == j {
				continue
			}
			if d := p.Dist(q); d < best {
				best = d
			}
		}
		gaps = append(gaps, best)
	}
	s.gaps = gaps
	sort.Float64s(gaps)
	return gaps[len(gaps)/10], true
}

// lastSignificantJump locates the elbow as the last curve value within
// the band whose relative successive jump reaches 40% of the band's
// maximum relative jump — the paper's argmax criterion made robust to
// noise, preferring the final intra-cluster→noise transition so sparse
// distant bodies still cohere. It falls back when the band is too short.
func lastSignificantJump(band []float64, fallback float64) float64 {
	if len(band) < 3 {
		return knee.Value(band, fallback)
	}
	best := 0.0
	for i := 0; i+1 < len(band); i++ {
		if band[i] <= 0 {
			continue
		}
		if g := (band[i+1] - band[i]) / band[i]; g > best {
			best = g
		}
	}
	if best == 0 {
		return fallback
	}
	for i := len(band) - 2; i >= 0; i-- {
		if band[i] <= 0 {
			continue
		}
		if g := (band[i+1] - band[i]) / band[i]; g >= 0.4*best {
			return band[i]
		}
	}
	return fallback
}

// Adaptive runs the paper's adaptive clustering: pick ε for this capture
// via OptimalEpsilon, then run DBSCAN with it.
func Adaptive(cloud geom.Cloud, cfg AdaptiveConfig) Result {
	var s Scratch
	return s.Adaptive(cloud, cfg)
}

// Adaptive is the Scratch-backed form of the package-level Adaptive and
// the geometry stage's per-frame entry point. With GridIndex the frame's
// grid is built exactly once and shared by the kNN curve, the coarse
// structure pass, and the final expansion — and when the elbow lands on
// the fallback ε, the coarse pass *is* the final result and no second
// expansion runs. The result aliases the Scratch's buffers (see
// Scratch). Labels are identical to the package-level Adaptive's for
// every IndexKind.
func (s *Scratch) Adaptive(cloud geom.Cloud, cfg AdaptiveConfig) Result {
	s.coarseValid = false
	if cfg.K < 1 || len(cloud) < cfg.K+2 {
		return s.DBSCAN(cloud, cfg.FallbackEps, cfg.MinPts)
	}
	idx := s.index(cloud, frameCell(cfg))
	eps := s.optimalEpsilon(idx, viewOf(cloud), cfg)
	if s.coarseValid && eps == s.coarseEps && cfg.MinPts == s.coarseMinPts {
		// The elbow landed on the fallback ε: the coarse structure pass
		// already computed exactly this clustering.
		return Result{Labels: s.coarseLabels, NumClusters: s.coarseNum, Epsilon: eps, Sizes: s.coarseSizes}
	}
	if s.Kind == KDTreeIndex {
		return s.DBSCAN(cloud, eps, cfg.MinPts)
	}
	// Same frame index, final ε.
	return s.dbscan(idx, viewOf(cloud), eps, cfg.MinPts)
}

// AdaptiveSoA runs the adaptive clustering over a structure-of-arrays
// cloud. Labels are identical to Adaptive over the widened cloud;
// requires GridIndex.
func AdaptiveSoA(cloud *geom.CloudSoA, cfg AdaptiveConfig) Result {
	var s Scratch
	return s.AdaptiveSoA(cloud, cfg)
}

// AdaptiveSoA is the Scratch-backed form of the package-level
// AdaptiveSoA, with the same one-grid-per-frame and coarse-result reuse
// behavior as Adaptive.
func (s *Scratch) AdaptiveSoA(cloud *geom.CloudSoA, cfg AdaptiveConfig) Result {
	s.coarseValid = false
	if cfg.K < 1 || cloud.Len() < cfg.K+2 {
		return s.DBSCANSoA(cloud, cfg.FallbackEps, cfg.MinPts)
	}
	idx := s.indexSoA(cloud, frameCell(cfg))
	eps := s.optimalEpsilon(idx, viewOfSoA(cloud), cfg)
	if s.coarseValid && eps == s.coarseEps && cfg.MinPts == s.coarseMinPts {
		return Result{Labels: s.coarseLabels, NumClusters: s.coarseNum, Epsilon: eps, Sizes: s.coarseSizes}
	}
	return s.dbscan(idx, viewOfSoA(cloud), eps, cfg.MinPts)
}
