// Package cluster implements the point-cloud clustering algorithms
// discussed in Section IV of the paper: DBSCAN with a fixed ε, the
// proposed adaptive-ε DBSCAN (per-capture ε from the k-nearest-neighbor
// elbow), single-linkage hierarchical clustering, k-means, and Gaussian
// mixture clustering. HAWC-CC uses adaptive DBSCAN; the rest are the
// baselines of Table IV.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"hawccc/internal/geom"
	"hawccc/internal/kdtree"
	"hawccc/internal/knee"
)

// Noise is the label assigned to points not belonging to any cluster.
const Noise = -1

// Result holds a clustering of a point cloud.
type Result struct {
	// Labels[i] is the cluster id of cloud point i, or Noise.
	Labels []int
	// NumClusters is the number of distinct non-noise clusters.
	NumClusters int
	// Epsilon is the neighborhood radius that produced this result, when
	// the algorithm is density-based (0 otherwise).
	Epsilon float64
}

// Clusters materializes the clustered sub-clouds, dropping noise points.
// Cluster i of the result holds the points labeled i.
func (r Result) Clusters(cloud geom.Cloud) []geom.Cloud {
	if len(r.Labels) != len(cloud) {
		panic(fmt.Sprintf("cluster: labels/cloud length mismatch %d vs %d", len(r.Labels), len(cloud)))
	}
	out := make([]geom.Cloud, r.NumClusters)
	for i, lbl := range r.Labels {
		if lbl == Noise {
			continue
		}
		out[lbl] = append(out[lbl], cloud[i])
	}
	return out
}

// ClustersInto materializes the clustered sub-clouds like Clusters, but
// reuses dst: the returned slice recycles dst's header and, where
// capacity allows, the backing arrays of its cloud entries. Streaming
// callers pass each frame's buffer back in, so steady-state cluster
// materialization stops allocating once the buffers have grown to
// match the traffic. Points and their order are exactly Clusters'; the
// returned clouds alias dst's storage, so the caller must not reuse dst
// until it is done with them.
func (r Result) ClustersInto(cloud geom.Cloud, dst []geom.Cloud) []geom.Cloud {
	if len(r.Labels) != len(cloud) {
		panic(fmt.Sprintf("cluster: labels/cloud length mismatch %d vs %d", len(r.Labels), len(cloud)))
	}
	if cap(dst) < r.NumClusters {
		grown := make([]geom.Cloud, r.NumClusters)
		copy(grown, dst[:cap(dst)])
		dst = grown
	} else {
		dst = dst[:r.NumClusters]
	}
	for i := range dst {
		dst[i] = dst[i][:0]
	}
	for i, lbl := range r.Labels {
		if lbl == Noise {
			continue
		}
		dst[lbl] = append(dst[lbl], cloud[i])
	}
	return dst
}

// NoiseCount returns the number of points labeled Noise.
func (r Result) NoiseCount() int {
	n := 0
	for _, l := range r.Labels {
		if l == Noise {
			n++
		}
	}
	return n
}

// DBSCAN clusters the cloud with the classic density-based algorithm:
// a point is a core point when at least minPts points (itself included)
// lie within eps; clusters are the connected components of core points
// plus their border neighbors. Runs in O(n log n) expected time using a
// k-d tree for region queries.
func DBSCAN(cloud geom.Cloud, eps float64, minPts int) Result {
	n := len(cloud)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 || eps <= 0 || minPts < 1 {
		return Result{Labels: labels, Epsilon: eps}
	}

	tree := kdtree.New(cloud)
	visited := make([]bool, n)
	next := 0

	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		neighbors := tree.Radius(cloud[i], eps)
		if len(neighbors) < minPts {
			continue // noise (may be claimed later as a border point)
		}
		// Start a new cluster and expand it breadth-first.
		labels[i] = next
		queue := append([]int(nil), neighbors...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == Noise {
				labels[j] = next // border point
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			labels[j] = next
			jn := tree.Radius(cloud[j], eps)
			if len(jn) >= minPts {
				queue = append(queue, jn...)
			}
		}
		next++
	}
	return Result{Labels: labels, NumClusters: next, Epsilon: eps}
}

// AdaptiveConfig parameterizes adaptive DBSCAN. The zero value is not
// useful; use DefaultAdaptiveConfig.
type AdaptiveConfig struct {
	// K is which nearest neighbor's distance feeds the elbow curve
	// (the paper plots k-NN distances; k = MinPts-1 is the usual choice).
	K int
	// MinPts is DBSCAN's core-point density threshold.
	MinPts int
	// FallbackEps is used when the capture is too small for elbow
	// detection or the band contains no curve values.
	FallbackEps float64
	// MinEps and MaxEps bound the elbow search to the physically
	// meaningful band. Below MinEps a neighborhood cannot span the
	// sensor's beam-row spacing at range, so no body can cohere; above
	// MaxEps a neighborhood exceeds the pedestrian separation scale and
	// merges the scene. The paper observes the same pathology from the
	// unconstrained elbow (Figure 4b: optimal ε up to 9.06) and notes
	// that deployed values must be clamped.
	MinEps, MaxEps float64
}

// DefaultAdaptiveConfig mirrors the deployment configuration described in
// Section IV.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{K: 4, MinPts: 5, FallbackEps: 0.3, MinEps: 0.2, MaxEps: 0.5}
}

// OptimalEpsilon computes the per-capture ε: sort every point's K-th
// nearest-neighbor distance ascending and take the curve value at the
// elbow (paper Section IV), with the elbow search restricted to the
// [MinEps, MaxEps] band. It returns the fallback for degenerate clouds.
func OptimalEpsilon(cloud geom.Cloud, cfg AdaptiveConfig) float64 {
	if cfg.K < 1 || len(cloud) < cfg.K+2 {
		return cfg.FallbackEps
	}
	tree := kdtree.New(cloud)
	dists := make([]float64, 0, len(cloud))
	for _, p := range cloud {
		// k+1 because the query point itself is returned at distance 0.
		nn := tree.KNN(p, cfg.K+1)
		d2 := nn[len(nn)-1].Dist2
		dists = append(dists, math.Sqrt(d2))
	}
	sort.Float64s(dists)
	// Restrict the elbow search to the physical band.
	lo := sort.SearchFloat64s(dists, cfg.MinEps)
	hi := len(dists)
	if cfg.MaxEps > 0 {
		hi = sort.SearchFloat64s(dists, cfg.MaxEps)
	}
	band := dists
	if cfg.MinEps > 0 || cfg.MaxEps > 0 {
		band = dists[lo:hi]
	}
	eps := lastSignificantJump(band, cfg.FallbackEps)
	if eps <= 0 {
		eps = cfg.FallbackEps
	}
	if cfg.MinEps > 0 && eps < cfg.MinEps {
		eps = cfg.MinEps
	}
	if cfg.MaxEps > 0 && eps > cfg.MaxEps {
		eps = cfg.MaxEps
	}
	// Structural refinement: the elbow proposes, the scene's cluster
	// spacing caps. A coarse density pass measures how closely separate
	// structures sit; in crowded captures the gap shrinks and ε must
	// shrink with it or neighbors chain into one cluster. This is the
	// "adjusts to point cloud structure and density" behavior of
	// Section IV operationalized for scenes denser than the training
	// walkway.
	if gap, ok := structureGap(cloud, cfg); ok {
		cap := gap / 3
		if cap < cfg.MinEps {
			cap = cfg.MinEps
		}
		if eps > cap {
			eps = cap
		}
	}
	return eps
}

// structureGap estimates the separation scale between substantial
// structures: a coarse DBSCAN pass at the fallback ε, then the 10th
// percentile of nearest-centroid distances among clusters with at least
// structureMinPts points. ok is false when the scene has fewer than two
// such structures.
func structureGap(cloud geom.Cloud, cfg AdaptiveConfig) (float64, bool) {
	const structureMinPts = 15
	res := DBSCAN(cloud, cfg.FallbackEps, cfg.MinPts)
	var centroids geom.Cloud
	counts := make([]int, res.NumClusters)
	sums := make([]geom.Point3, res.NumClusters)
	for i, l := range res.Labels {
		if l == Noise {
			continue
		}
		counts[l]++
		sums[l] = sums[l].Add(cloud[i])
	}
	for c := range counts {
		if counts[c] >= structureMinPts {
			centroids = append(centroids, sums[c].Scale(1/float64(counts[c])))
		}
	}
	if len(centroids) < 2 {
		return 0, false
	}
	gaps := make([]float64, 0, len(centroids))
	for i, p := range centroids {
		best := math.Inf(1)
		for j, q := range centroids {
			if i == j {
				continue
			}
			if d := p.Dist(q); d < best {
				best = d
			}
		}
		gaps = append(gaps, best)
	}
	sort.Float64s(gaps)
	return gaps[len(gaps)/10], true
}

// lastSignificantJump locates the elbow as the last curve value within
// the band whose relative successive jump reaches 40% of the band's
// maximum relative jump — the paper's argmax criterion made robust to
// noise, preferring the final intra-cluster→noise transition so sparse
// distant bodies still cohere. It falls back when the band is too short.
func lastSignificantJump(band []float64, fallback float64) float64 {
	if len(band) < 3 {
		return knee.Value(band, fallback)
	}
	best := 0.0
	for i := 0; i+1 < len(band); i++ {
		if band[i] <= 0 {
			continue
		}
		if g := (band[i+1] - band[i]) / band[i]; g > best {
			best = g
		}
	}
	if best == 0 {
		return fallback
	}
	for i := len(band) - 2; i >= 0; i-- {
		if band[i] <= 0 {
			continue
		}
		if g := (band[i+1] - band[i]) / band[i]; g >= 0.4*best {
			return band[i]
		}
	}
	return fallback
}

// Adaptive runs the paper's adaptive clustering: pick ε for this capture
// via OptimalEpsilon, then run DBSCAN with it.
func Adaptive(cloud geom.Cloud, cfg AdaptiveConfig) Result {
	eps := OptimalEpsilon(cloud, cfg)
	return DBSCAN(cloud, eps, cfg.MinPts)
}
