package cluster

import (
	"container/heap"

	"hawccc/internal/geom"
)

// Hierarchical performs agglomerative single-linkage clustering, cutting
// the dendrogram at the given distance threshold: clusters are merged while
// the closest pair of points between them is within cutDistance.
//
// This is a Table IV baseline. As the paper observes, hierarchical
// clustering tends to split one person's returns across multiple clusters
// (and therefore drastically over-counts) because LiDAR returns on a body
// are banded by the beam pattern.
//
// Implementation: single-linkage with a cut threshold is exactly the
// connected components of the graph whose edges join points closer than
// cutDistance; we compute it with a union-find over a Prim-style minimum
// spanning forest, O(n²) time and O(n) memory, which is fine for the
// per-capture sizes involved (≤ a few thousand points).
func Hierarchical(cloud geom.Cloud, cutDistance float64) Result {
	n := len(cloud)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 || cutDistance <= 0 {
		return Result{Labels: labels}
	}

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	cut2 := cutDistance * cutDistance
	// Grid-bucket the points at cutDistance resolution so we only compare
	// each point against its 27 neighboring cells instead of all pairs.
	type cell struct{ x, y, z int }
	buckets := make(map[cell][]int, n)
	key := func(p geom.Point3) cell {
		return cell{
			x: int(fastFloor(p.X / cutDistance)),
			y: int(fastFloor(p.Y / cutDistance)),
			z: int(fastFloor(p.Z / cutDistance)),
		}
	}
	for i, p := range cloud {
		k := key(p)
		buckets[k] = append(buckets[k], i)
	}
	for i, p := range cloud {
		k := key(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					for _, j := range buckets[cell{k.x + dx, k.y + dy, k.z + dz}] {
						if j <= i {
							continue
						}
						if p.Dist2(cloud[j]) <= cut2 {
							union(i, j)
						}
					}
				}
			}
		}
	}

	// Relabel components densely.
	next := 0
	compact := make(map[int]int, n)
	for i := range cloud {
		root := find(i)
		id, ok := compact[root]
		if !ok {
			id = next
			compact[root] = id
			next++
		}
		labels[i] = id
	}
	return Result{Labels: labels, NumClusters: next}
}

func fastFloor(x float64) int64 {
	i := int64(x)
	if x < 0 && float64(i) != x {
		i--
	}
	return i
}

// mergeEvent is one step of the agglomerative process (used by Dendrogram).
type mergeEvent struct {
	dist float64
	a, b int
}

type mergeHeap []mergeEvent

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeEvent)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// HierarchicalK performs single-linkage agglomeration down to exactly k
// clusters (or fewer if the cloud has fewer points). Exposed for tests and
// for callers that know the expected cluster count.
func HierarchicalK(cloud geom.Cloud, k int) Result {
	n := len(cloud)
	labels := make([]int, n)
	if n == 0 || k < 1 {
		for i := range labels {
			labels[i] = Noise
		}
		return Result{Labels: labels}
	}
	if k > n {
		k = n
	}

	parent := make([]int, n)
	size := make([]int, n)
	for i := range parent {
		parent[i] = i
		size[i] = 1
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// All pairwise edges into a heap: O(n² log n). Acceptable for the small
	// per-capture clouds this is applied to.
	h := make(mergeHeap, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			h = append(h, mergeEvent{cloud[i].Dist2(cloud[j]), i, j})
		}
	}
	heap.Init(&h)

	remaining := n
	for remaining > k && h.Len() > 0 {
		e := heap.Pop(&h).(mergeEvent)
		ra, rb := find(e.a), find(e.b)
		if ra == rb {
			continue
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
		remaining--
	}

	next := 0
	compact := make(map[int]int, k)
	for i := range cloud {
		root := find(i)
		id, ok := compact[root]
		if !ok {
			id = next
			compact[root] = id
			next++
		}
		labels[i] = id
	}
	return Result{Labels: labels, NumClusters: next}
}
