package tsdb

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := New(Config{Dir: dir, ChunkSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := map[SeriesKey][]Sample{}
	for pole := uint32(1); pole <= 3; pole++ {
		sr := st.Series(pole, "count")
		for i := 0; i < 50; i++ {
			ts := int64(i) * 1_000_000_000
			v := float64(pole*100) + float64(i)
			sr.Append(ts, v)
			k := SeriesKey{Pole: pole, Name: "count"}
			want[k] = append(want[k], Sample{TS: ts, V: v})
		}
	}
	st.SealAll()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d series, want %d", len(got), len(want))
	}
	for _, ss := range got {
		w, ok := want[ss.Key]
		if !ok {
			t.Fatalf("unexpected series %+v", ss.Key)
		}
		sameSamples(t, ss.Samples, w)
	}
}

// TestSegmentRotationAndSchemaReEmission forces tiny segments so chunks
// spread across many files, then checks (a) every file decodes on its
// own — the per-segment schema re-emission contract — and (b) the
// merged read equals what was appended.
func TestSegmentRotationAndSchemaReEmission(t *testing.T) {
	dir := t.TempDir()
	st, err := New(Config{Dir: dir, ChunkSamples: 4, SegmentBytes: 256, MaxSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	sr := st.Series(42, "pole_temp_c")
	var want []Sample
	for i := 0; i < 400; i++ {
		ts := int64(i) * 102_000_000_000
		v := 20 + math.Sin(float64(i)/10)
		sr.Append(ts, v)
		want = append(want, Sample{TS: ts, V: v})
	}
	st.SealAll()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	files, err := filepath.Glob(filepath.Join(dir, "seg-*.htsd"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("%d segment files, want rotation to produce several", len(files))
	}
	for _, f := range files {
		segs, err := ReadSegment(f)
		if err != nil {
			t.Fatalf("%s: standalone read failed: %v", filepath.Base(f), err)
		}
		for _, ss := range segs {
			if ss.Key != (SeriesKey{Pole: 42, Name: "pole_temp_c"}) {
				t.Fatalf("%s: schema decoded to %+v", filepath.Base(f), ss.Key)
			}
		}
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("merged to %d series, want 1", len(got))
	}
	sameSamples(t, got[0].Samples, want)
}

func TestSegmentRetentionPrunesOldFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := New(Config{Dir: dir, ChunkSamples: 4, SegmentBytes: 128, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	sr := st.Series(1, "count")
	for i := 0; i < 1000; i++ {
		sr.Append(int64(i)*1_000_000_000, float64(i*i)) // growing deltas defeat RLE
	}
	st.SealAll()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.htsd"))
	if len(files) > 3 {
		t.Fatalf("%d segment files retained, want <= 3", len(files))
	}
	if _, err := ReadDir(dir); err != nil {
		t.Fatalf("pruned directory no longer reads: %v", err)
	}
}

func TestSegmentSequenceResumesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := New(Config{Dir: dir, ChunkSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	st.Append(1, "count", 1, 1)
	st.Append(1, "count", 2, 2)
	st.SealAll()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	before, _ := filepath.Glob(filepath.Join(dir, "seg-*.htsd"))

	st2, err := New(Config{Dir: dir, ChunkSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	st2.Append(1, "count", 3, 3)
	st2.Append(1, "count", 4, 4)
	st2.SealAll()
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "seg-*.htsd"))
	if len(after) <= len(before) {
		t.Fatalf("restart reused a segment file: %d files before, %d after", len(before), len(after))
	}
	merged, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 {
		t.Fatalf("merged to %d series, want 1", len(merged))
	}
	sameSamples(t, merged[0].Samples, []Sample{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
}

func TestReadSegmentRejectsCorruptHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-000001.htsd")
	if err := os.WriteFile(path, []byte("NOPE\x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegment(path); err == nil {
		t.Error("bad magic accepted")
	}
}
