package tsdb

import (
	"context"
	"math"
	"testing"
	"time"

	"hawccc/internal/obs"
)

func TestSamplerCapturesTypedSeries(t *testing.T) {
	reg := obs.NewRegistry()
	reports := reg.Counter("backend_reports_total", "reports", obs.L("pole", "12"))
	temp := reg.Gauge("backend_pole_temp_celsius", "temp", obs.L("pole", "12"))
	global := reg.Gauge("backend_connections_active", "conns")
	lat := reg.Histogram("backend_api_request_seconds", "latency", obs.LatencyBuckets())

	st := MustNew(Config{})
	now := time.Unix(1000, 0)
	s := NewSampler(st, reg, SamplerConfig{Now: func() time.Time { return now }})

	reports.Add(3)
	temp.Set(36.5)
	global.Add(2)
	lat.Observe(0.010)
	lat.Observe(0.030)
	if n := s.SampleOnce(); n != 6 { // counter + 2 gauges + histogram×3
		t.Fatalf("first tick appended %d samples, want 6", n)
	}

	now = now.Add(time.Second)
	reports.Inc()
	temp.Set(37.25)
	if n := s.SampleOnce(); n != 6 {
		t.Fatalf("second tick appended %d samples, want 6", n)
	}
	if s.Ticks() != 2 || s.Captured() != 12 {
		t.Fatalf("ticks/captured = %d/%d, want 2/12", s.Ticks(), s.Captured())
	}

	// The pole label routed the labeled series to pole 12 and was
	// stripped from the stored name.
	sr, ok := st.Lookup(12, "backend_reports_total")
	if !ok {
		t.Fatal("pole-labeled counter not captured under pole 12")
	}
	got, err := sr.QueryRaw(0, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	sameSamples(t, got, []Sample{
		{time.Unix(1000, 0).UnixNano(), 3},
		{time.Unix(1001, 0).UnixNano(), 4},
	})

	sr, ok = st.Lookup(12, "backend_pole_temp_celsius")
	if !ok {
		t.Fatal("pole-labeled gauge not captured")
	}
	got, _ = sr.QueryRaw(0, math.MaxInt64)
	sameSamples(t, got, []Sample{
		{time.Unix(1000, 0).UnixNano(), 36.5},
		{time.Unix(1001, 0).UnixNano(), 37.25},
	})

	// Unlabeled series land under pole 0.
	if _, ok := st.Lookup(0, "backend_connections_active"); !ok {
		t.Fatal("unlabeled gauge not captured under pole 0")
	}

	// Histograms expand to count / sum / quantile sub-series.
	cnt, ok := st.Lookup(0, "backend_api_request_seconds:count")
	if !ok {
		t.Fatal("histogram count sub-series missing")
	}
	got, _ = cnt.QueryRaw(0, math.MaxInt64)
	if len(got) != 2 || got[0].V != 2 || got[1].V != 2 {
		t.Fatalf("histogram counts %+v, want 2 observations at both ticks", got)
	}
	sum, ok := st.Lookup(0, "backend_api_request_seconds:sum")
	if !ok {
		t.Fatal("histogram sum sub-series missing")
	}
	got, _ = sum.QueryRaw(0, math.MaxInt64)
	if len(got) != 2 || math.Abs(got[0].V-0.040) > 1e-12 {
		t.Fatalf("histogram sum %+v, want ~0.040", got)
	}
	if _, ok := st.Lookup(0, "backend_api_request_seconds:p99"); !ok {
		t.Fatal("histogram quantile sub-series missing")
	}
}

func TestSamplerKeepsNonPoleLabelsInName(t *testing.T) {
	reg := obs.NewRegistry()
	crowding := reg.Counter("backend_alerts_total", "alerts", obs.L("kind", "crowding"))
	overheat := reg.Counter("backend_alerts_total", "alerts", obs.L("kind", "overheat"))
	crowding.Add(5)
	overheat.Add(2)

	st := MustNew(Config{})
	s := NewSampler(st, reg, SamplerConfig{Now: func() time.Time { return time.Unix(1, 0) }})
	s.SampleOnce()

	a, okA := st.Lookup(0, "backend_alerts_total{kind=crowding}")
	b, okB := st.Lookup(0, "backend_alerts_total{kind=overheat}")
	if !okA || !okB {
		t.Fatal("label-qualified series names missing")
	}
	ga, _ := a.QueryRaw(0, math.MaxInt64)
	gb, _ := b.QueryRaw(0, math.MaxInt64)
	if ga[0].V != 5 || gb[0].V != 2 {
		t.Fatalf("captured %v/%v, want 5/2", ga[0].V, gb[0].V)
	}
}

func TestSamplerRunFinalTick(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("g", "gauge").Set(1)
	st := MustNew(Config{})
	s := NewSampler(st, reg, SamplerConfig{Interval: time.Hour})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		s.Run(ctx)
		close(done)
	}()
	cancel()
	<-done
	if s.Ticks() != 1 {
		t.Fatalf("ticks = %d, want exactly the final shutdown sample", s.Ticks())
	}
}
