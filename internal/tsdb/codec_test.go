package tsdb

import (
	"math"
	"math/rand"
	"testing"
)

// roundTrip encodes the series and demands a bit-identical decode: every
// timestamp equal, every value equal as an IEEE-754 bit pattern (so NaN
// payloads, -0, and last-ulp differences all count).
func roundTrip(t *testing.T, ts []int64, vals []float64) *Chunk {
	t.Helper()
	c, err := EncodeChunk(ts, vals)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := c.Decode(nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(ts) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(ts))
	}
	for i := range got {
		if got[i].TS != ts[i] {
			t.Fatalf("sample %d: ts %d, want %d", i, got[i].TS, ts[i])
		}
		if math.Float64bits(got[i].V) != math.Float64bits(vals[i]) {
			t.Fatalf("sample %d: value bits %016x, want %016x (%v vs %v)",
				i, math.Float64bits(got[i].V), math.Float64bits(vals[i]), got[i].V, vals[i])
		}
	}
	return c
}

func TestChunkRoundTripKnownShapes(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		ts   []int64
		vals []float64
	}{
		{"single", []int64{42}, []float64{3.5}},
		{"constant-counts", []int64{0, 1000, 2000, 3000}, []float64{7, 7, 7, 7}},
		{"counter-reset", []int64{0, 1, 2, 3, 4}, []float64{100, 200, 300, 0, 50}},
		{"negatives", []int64{-5, -4, -3}, []float64{-1, -2.5, -1e300}},
		{"nan-mixed", []int64{0, 1, 2, 3}, []float64{1, nan, 2, nan}},
		{"neg-zero", []int64{0, 1, 2}, []float64{0, math.Copysign(0, -1), 0}},
		{"infinities", []int64{0, 1, 2}, []float64{math.Inf(1), math.Inf(-1), 0}},
		{"extreme-ints", []int64{0, 1}, []float64{-9.007199254740992e15, 9.007199254740992e15}},
		{"irregular-ts", []int64{0, 1, 1000000000, 1000000001, 5000000000}, []float64{1, 2, 3, 4, 5}},
		{"subnormals", []int64{0, 1, 2}, []float64{5e-324, 0, -5e-324}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			roundTrip(t, tc.ts, tc.vals)
		})
	}
}

// TestChunkRoundTripRandom is the property test: random series of every
// flavor the capture path produces — integral counters with resets,
// noisy gauges, constant runs, NaN dropouts — must round-trip exactly.
func TestChunkRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(700)
		ts := make([]int64, n)
		vals := make([]float64, n)
		tcur := rng.Int63n(1 << 40)
		flavor := trial % 4
		cur := float64(rng.Intn(1000))
		for i := 0; i < n; i++ {
			tcur += rng.Int63n(2_000_000_000) // up to 2s jitter, may be 0
			ts[i] = tcur
			switch flavor {
			case 0: // integral counter with occasional resets
				if rng.Intn(50) == 0 {
					cur = 0
				}
				cur += float64(rng.Intn(10))
				vals[i] = cur
			case 1: // noisy gauge
				vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			case 2: // constant runs with steps
				if rng.Intn(20) == 0 {
					cur = float64(rng.Intn(100))
				}
				vals[i] = cur
			default: // adversarial bit patterns incl. NaN payloads
				vals[i] = math.Float64frombits(rng.Uint64())
			}
		}
		roundTrip(t, ts, vals)
	}
}

func TestChunkAggregates(t *testing.T) {
	ts := []int64{5, 10, 2, 30} // codec does not require order; store does
	vals := []float64{4, math.NaN(), -7, 2.5}
	c := roundTrip(t, ts, vals)
	if c.MinTS != 2 || c.MaxTS != 30 {
		t.Errorf("ts range [%d,%d], want [2,30]", c.MinTS, c.MaxTS)
	}
	if c.Count != 4 || c.First != 4 || c.Last != 2.5 {
		t.Errorf("count/first/last = %d/%v/%v", c.Count, c.First, c.Last)
	}
	if c.Min != -7 || c.Max != 4 {
		t.Errorf("min/max = %v/%v, want -7/4 (NaN skipped)", c.Min, c.Max)
	}
	if !math.IsNaN(c.Sum) {
		t.Errorf("sum = %v, want NaN (NaN poisons the running sum)", c.Sum)
	}
}

func TestNaNOnlyChunkAggregates(t *testing.T) {
	c := roundTrip(t, []int64{1, 2}, []float64{math.NaN(), math.NaN()})
	if !math.IsNaN(c.Min) || !math.IsNaN(c.Max) {
		t.Errorf("min/max = %v/%v, want NaN/NaN", c.Min, c.Max)
	}
}

// TestIntegralSeriesCompression pins the point of the format: a regular
// cadence with small integer movements — exactly what per-pole counts
// look like — must beat 16-byte rows by a wide margin.
func TestIntegralSeriesCompression(t *testing.T) {
	const n = 512
	ts := make([]int64, n)
	vals := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range ts {
		ts[i] = int64(i) * 1_000_000_000 // exact 1s cadence: DoD is all zeros
		vals[i] = float64(5 + rng.Intn(4))
	}
	c := roundTrip(t, ts, vals)
	if c.data[2] != encIntDelta {
		t.Fatalf("encoding %d, want int-delta for all-integral values", c.data[2])
	}
	perSample := float64(c.Bytes()) / n
	if perSample > 2 {
		t.Errorf("%.2f bytes/sample, want <= 2 for regular integral series", perSample)
	}
}

func TestConstantRunUsesZeroRLE(t *testing.T) {
	const n = 1000
	ts := make([]int64, n)
	vals := make([]float64, n)
	for i := range ts {
		ts[i] = int64(i) * 1_000_000_000
		vals[i] = 21.5 // non-integral so the bits encoding is exercised too
	}
	c := roundTrip(t, ts, vals)
	if c.Bytes() > 64 {
		t.Errorf("constant series encoded to %d bytes, want <= 64 via zero-RLE", c.Bytes())
	}
}

func TestEncodeChunkRejectsBadInput(t *testing.T) {
	if _, err := EncodeChunk(nil, nil); err == nil {
		t.Error("empty series encoded without error")
	}
	if _, err := EncodeChunk([]int64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths encoded without error")
	}
}

func TestDecodeChunkDataRejectsCorruption(t *testing.T) {
	c, err := EncodeChunk([]int64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	good := c.Data()
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:5],
		"bad-magic":   append([]byte{0x00}, good[1:]...),
		"bad-version": append([]byte{good[0], 0xFF}, good[2:]...),
		"bad-enc":     append([]byte{good[0], good[1], 0x7F}, good[3:]...),
	}
	for name, data := range cases {
		if _, err := DecodeChunkData(data, nil); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestDecodeBoundsAllocation pins the MaxChunkSamples guard: a tiny
// payload claiming an enormous sample count must be rejected, not
// trusted with an allocation.
func TestDecodeBoundsAllocation(t *testing.T) {
	c, err := EncodeChunk([]int64{1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), c.Data()...)
	// Rewrite the count varint (offset 3) to claim 2^40 samples; the
	// original count 1 is a single byte, so splice freely.
	forged := append(data[:3:3], 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20)
	forged = append(forged, data[4:]...)
	if _, err := DecodeChunkData(forged, nil); err == nil {
		t.Fatal("decoder accepted a 2^40-sample claim from a 30-byte payload")
	}
}

// FuzzDecodeChunkData demands the decoder never panics and never
// over-allocates on arbitrary input — errors are the only acceptable
// failure mode.
func FuzzDecodeChunkData(f *testing.F) {
	if c, err := EncodeChunk([]int64{1, 2, 3}, []float64{1.5, math.NaN(), -0.0}); err == nil {
		f.Add(c.Data())
	}
	if c, err := EncodeChunk([]int64{0, 1_000_000_000}, []float64{100, 101}); err == nil {
		f.Add(c.Data())
	}
	f.Add([]byte{chunkMagic, chunkVersion, encIntDelta, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		samples, err := DecodeChunkData(data, nil)
		if err == nil && (len(samples) == 0 || len(samples) > MaxChunkSamples) {
			t.Fatalf("successful decode returned %d samples", len(samples))
		}
	})
}

// FuzzChunkRoundTrip derives a series from the fuzz input and demands a
// bit-exact round trip: 16-byte groups become (timestamp delta, value
// bits) pairs, covering NaN payloads, ±Inf, -0, and wild deltas.
func FuzzChunkRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0x40, 0x45, 0, 0, 0, 0, 0, 0})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 16
		if n == 0 {
			return
		}
		ts := make([]int64, n)
		vals := make([]float64, n)
		var tcur int64
		for i := 0; i < n; i++ {
			var d, bits uint64
			for j := 0; j < 8; j++ {
				d = d<<8 | uint64(data[i*16+j])
				bits = bits<<8 | uint64(data[i*16+8+j])
			}
			tcur += int64(d % (1 << 34)) // arbitrary non-negative jitter
			ts[i] = tcur
			vals[i] = math.Float64frombits(bits)
		}
		c, err := EncodeChunk(ts, vals)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := c.Decode(nil)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		for i := range got {
			if got[i].TS != ts[i] || math.Float64bits(got[i].V) != math.Float64bits(vals[i]) {
				t.Fatalf("sample %d: (%d, %016x), want (%d, %016x)",
					i, got[i].TS, math.Float64bits(got[i].V), ts[i], math.Float64bits(vals[i]))
			}
		}
	})
}
