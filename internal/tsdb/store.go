package tsdb

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for the zero values of Config.
const (
	DefaultShards       = 64
	DefaultChunkSamples = 512
	DefaultMaxChunks    = 256
	DefaultSegmentBytes = 1 << 20
	DefaultMaxSegments  = 8
)

// Config parameterizes a Store.
type Config struct {
	// Shards is the series-map shard count, rounded up to a power of two
	// (0 selects DefaultShards). Series hash to shards by pole ID with
	// the same murmur3 finalizer the backend registry uses, so a fleet's
	// append streams contend only on pole collisions.
	Shards int
	// ChunkSamples is the hot-tier capacity per series: appends fill a
	// fixed buffer reused in place, and every ChunkSamples samples the
	// buffer seals into an immutable compressed chunk. 0 selects
	// DefaultChunkSamples; values above MaxChunkSamples are clamped.
	ChunkSamples int
	// MaxChunks bounds the sealed chunks retained in memory per series
	// (a ring: sealing past the cap evicts the oldest chunk). 0 selects
	// DefaultMaxChunks; negative means unbounded.
	MaxChunks int
	// Dir, when non-empty, streams sealed chunks to size-rotated segment
	// files in this directory (see segment.go for the format). Empty
	// keeps the store memory-only.
	Dir string
	// SegmentBytes rotates the active segment file once it exceeds this
	// size (0 selects DefaultSegmentBytes).
	SegmentBytes int
	// MaxSegments bounds the retained segment files; rotation deletes
	// the oldest beyond the cap (0 selects DefaultMaxSegments; negative
	// means unbounded).
	MaxSegments int
	// WarmStart, with Dir set, reads the directory's sealed segment
	// files back into memory before the writer opens its first file, so
	// a restarted process serves pre-restart history immediately. Loaded
	// samples install as sealed chunks (never re-written to disk) and
	// are accounted separately in Stats.Loaded.
	WarmStart bool
	// MaxAge, when positive, expires sealed data by time alongside the
	// MaxChunks ring: at every seal (and at warm-start load) a series
	// drops sealed chunks whose newest sample is more than MaxAge older
	// than the series' latest timestamp, and segment rotation deletes
	// files whose modification time has aged out. Sample timestamps are
	// unix nanoseconds (the backend's convention), so a time.Duration
	// compares directly.
	MaxAge time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.ChunkSamples <= 0 {
		c.ChunkSamples = DefaultChunkSamples
	}
	if c.ChunkSamples > MaxChunkSamples {
		c.ChunkSamples = MaxChunkSamples
	}
	if c.MaxChunks == 0 {
		c.MaxChunks = DefaultMaxChunks
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = DefaultSegmentBytes
	}
	if c.MaxSegments == 0 {
		c.MaxSegments = DefaultMaxSegments
	}
	return c
}

// SeriesKey identifies one series: a pole (0 for process-wide series the
// sampler captures) and a short name like "count" or "pole_temp_c".
type SeriesKey struct {
	Pole uint32 `json:"pole"`
	Name string `json:"name"`
}

// Store is the concurrent FTDC-style capture. Appends go through Series
// handles (get-or-create via Series, cacheable by the caller so the hot
// path does no map lookups); reads decode immutable sealed chunks plus a
// brief copy of the hot tail, so a slow historical query never blocks an
// append for more than the tail copy.
type Store struct {
	cfg    Config
	shards []storeShard
	mask   uint32

	seriesN   atomic.Int64
	appended  atomic.Uint64 // lifetime samples appended
	loadedN   atomic.Uint64 // samples warm-started from disk segments
	sealedN   atomic.Uint64 // lifetime samples sealed into chunks
	sealedB   atomic.Uint64 // lifetime encoded bytes sealed
	droppedN  atomic.Uint64 // samples evicted by the ring or MaxAge
	intChunks atomic.Uint64 // sealed chunks that chose int-delta encoding
	nextID    atomic.Uint32

	disk *segmentWriter
}

type storeShard struct {
	mu     sync.RWMutex
	series map[SeriesKey]*Series
}

// New builds a store; an error is only possible when Config.Dir cannot
// be created or written.
func New(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	size := 1
	for size < cfg.Shards {
		size <<= 1
	}
	s := &Store{cfg: cfg, shards: make([]storeShard, size), mask: uint32(size - 1)}
	for i := range s.shards {
		s.shards[i].series = make(map[SeriesKey]*Series)
	}
	if cfg.Dir != "" {
		// Warm-start reads the sealed segments back BEFORE the writer
		// opens: rotation both creates a fresh (buffered, unflushed)
		// file that a reader must not see mid-write and prunes old
		// files that should still contribute to the restart's memory
		// view.
		if cfg.WarmStart {
			segs, err := ReadDir(cfg.Dir)
			if err != nil {
				return nil, fmt.Errorf("tsdb: warm start: %w", err)
			}
			for _, ss := range segs {
				s.Series(ss.Key.Pole, ss.Key.Name).load(ss.Samples)
			}
		}
		w, err := newSegmentWriter(cfg.Dir, cfg.SegmentBytes, cfg.MaxSegments, cfg.MaxAge)
		if err != nil {
			return nil, err
		}
		s.disk = w
	}
	return s, nil
}

// MustNew is New for memory-only configs, where no error is possible.
func MustNew(cfg Config) *Store {
	cfg.Dir = ""
	s, err := New(cfg)
	if err != nil {
		panic(fmt.Sprintf("tsdb: %v", err))
	}
	return s
}

// Close flushes and closes the disk writer, if any. The store remains
// usable in memory afterwards; further seals are no longer persisted.
func (s *Store) Close() error {
	if s.disk == nil {
		return nil
	}
	return s.disk.close()
}

// mixPole is the murmur3-style finalizer the backend registry uses, so
// sequential pole IDs spread across shards.
func mixPole(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

func (s *Store) shard(pole uint32) *storeShard {
	return &s.shards[mixPole(pole)&s.mask]
}

// Series returns the handle for key, creating the series on first use.
// Handles are shared and safe for concurrent appenders; callers on a hot
// path should cache them (the backend caches per-pole handles in its
// registry entries exactly as it caches instrument sets).
func (s *Store) Series(pole uint32, name string) *Series {
	key := SeriesKey{Pole: pole, Name: name}
	sh := s.shard(pole)
	sh.mu.RLock()
	sr, ok := sh.series[key]
	sh.mu.RUnlock()
	if ok {
		return sr
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sr, ok = sh.series[key]; ok {
		return sr
	}
	sr = &Series{
		st:   s,
		Key:  key,
		id:   s.nextID.Add(1),
		ts:   make([]int64, s.cfg.ChunkSamples),
		vals: make([]float64, s.cfg.ChunkSamples),
	}
	sh.series[key] = sr
	s.seriesN.Add(1)
	return sr
}

// Lookup returns the handle for key without creating it.
func (s *Store) Lookup(pole uint32, name string) (*Series, bool) {
	sh := s.shard(pole)
	sh.mu.RLock()
	sr, ok := sh.series[SeriesKey{Pole: pole, Name: name}]
	sh.mu.RUnlock()
	return sr, ok
}

// Append records one sample on (pole, name), creating the series on
// first use. Hot paths should hold a Series handle instead.
func (s *Store) Append(pole uint32, name string, ts int64, v float64) {
	s.Series(pole, name).Append(ts, v)
}

// SeriesMeta describes one series for the /api/history/series listing.
type SeriesMeta struct {
	Name    string `json:"name"`
	Samples uint64 `json:"samples"` // lifetime appended
	FirstTS int64  `json:"first_ts"`
	LastTS  int64  `json:"last_ts"`
}

// PoleSeries lists the pole's series sorted by name.
func (s *Store) PoleSeries(pole uint32) []SeriesMeta {
	sh := s.shard(pole)
	sh.mu.RLock()
	handles := make([]*Series, 0, 8)
	for key, sr := range sh.series {
		if key.Pole == pole {
			handles = append(handles, sr)
		}
	}
	sh.mu.RUnlock()
	out := make([]SeriesMeta, 0, len(handles))
	for _, sr := range handles {
		sr.mu.Lock()
		out = append(out, SeriesMeta{
			Name:    sr.Key.Name,
			Samples: sr.total,
			FirstTS: sr.firstTS,
			LastTS:  sr.lastTS,
		})
		sr.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats summarizes the store for benchmarks and diagnostics.
type Stats struct {
	Series          int     `json:"series"`
	Appended        uint64  `json:"appended"` // lifetime samples appended
	Loaded          uint64  `json:"loaded"`   // samples warm-started from disk segments
	Retained        uint64  `json:"retained"` // decodable right now: sealed in memory + hot
	SealedSamples   uint64  `json:"sealed_samples"`
	SealedBytes     uint64  `json:"sealed_bytes"`
	DroppedSamples  uint64  `json:"dropped_samples"` // evicted by the per-series ring or MaxAge
	IntChunks       uint64  `json:"int_chunks"`
	BytesPerSample  float64 `json:"bytes_per_sample"` // sealed bytes / sealed samples
	NaiveBytes      uint64  `json:"naive_bytes"`      // 16-byte (ts,value) rows
	CompressionVs16 float64 `json:"compression_vs_float64_rows"`
}

// Stats walks every series (taking each lock briefly) and returns the
// current totals. Conservation invariant when nothing has been evicted:
// Retained == Appended + Loaded.
func (s *Store) Stats() Stats {
	st := Stats{
		Series:         int(s.seriesN.Load()),
		Appended:       s.appended.Load(),
		Loaded:         s.loadedN.Load(),
		SealedSamples:  s.sealedN.Load(),
		SealedBytes:    s.sealedB.Load(),
		DroppedSamples: s.droppedN.Load(),
		IntChunks:      s.intChunks.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		handles := make([]*Series, 0, len(sh.series))
		for _, sr := range sh.series {
			handles = append(handles, sr)
		}
		sh.mu.RUnlock()
		for _, sr := range handles {
			sr.mu.Lock()
			st.Retained += uint64(sr.n)
			if list := sr.sealed.Load(); list != nil {
				for _, c := range list.chunks {
					st.Retained += uint64(c.Count)
				}
			}
			sr.mu.Unlock()
		}
	}
	if st.SealedSamples > 0 {
		st.BytesPerSample = float64(st.SealedBytes) / float64(st.SealedSamples)
		st.NaiveBytes = 16 * st.SealedSamples
		st.CompressionVs16 = float64(st.NaiveBytes) / float64(st.SealedBytes)
	}
	return st
}

// chunkList is the immutable sealed-chunk view published per series.
type chunkList struct {
	chunks []*Chunk
}

// Series is one append stream. Appends lock the series mutex, write two
// array slots, and return; sealing (every ChunkSamples appends) encodes
// the buffer and publishes a fresh immutable chunk list, so the hot path
// allocates only when it seals — bounded amortized cost, pinned by test.
type Series struct {
	st  *Store
	Key SeriesKey
	id  uint32

	mu      sync.Mutex
	ts      []int64 // hot buffer, fixed capacity, reused in place
	vals    []float64
	n       int
	firstTS int64
	lastTS  int64
	total   uint64

	sealed atomic.Pointer[chunkList]
}

// Append records one sample. Timestamps must be non-decreasing per
// series; an earlier timestamp is clamped to the latest one seen (the
// FTDC contract — capture order is the order of record).
func (sr *Series) Append(ts int64, v float64) {
	sr.mu.Lock()
	if sr.total > 0 && ts < sr.lastTS {
		ts = sr.lastTS
	}
	if sr.n == len(sr.ts) {
		sr.seal()
	}
	if sr.n == 0 && sr.total == 0 {
		sr.firstTS = ts
	}
	sr.ts[sr.n] = ts
	sr.vals[sr.n] = v
	sr.n++
	sr.lastTS = ts
	sr.total++
	sr.mu.Unlock()
	sr.st.appended.Add(1)
}

// seal encodes the hot buffer into an immutable chunk and publishes it.
// Caller holds sr.mu and guarantees sr.n > 0.
func (sr *Series) seal() {
	c, err := EncodeChunk(sr.ts[:sr.n], sr.vals[:sr.n])
	if err != nil {
		panic(fmt.Sprintf("tsdb: seal: %v", err)) // unreachable: n > 0
	}
	old := sr.sealed.Load()
	var chunks []*Chunk
	if old != nil {
		chunks = old.chunks
	}
	next := make([]*Chunk, 0, len(chunks)+1)
	next = append(next, chunks...)
	next = append(next, c)
	sr.sealed.Store(&chunkList{chunks: sr.retain(next)})
	sr.st.sealedN.Add(uint64(c.Count))
	sr.st.sealedB.Add(uint64(len(c.data)))
	if c.data[2] == encIntDelta {
		sr.st.intChunks.Add(1)
	}
	if sr.st.disk != nil {
		sr.st.disk.writeChunk(sr.id, sr.Key, c.data)
	}
	sr.n = 0
}

// retain applies the series' retention policy to a prospective sealed
// list — MaxAge expiry first (chunks whose newest sample trails the
// series' latest timestamp by more than MaxAge; the newest chunk is
// never expired), then the MaxChunks ring — accounting every evicted
// sample in droppedN. Caller holds sr.mu and owns the slice.
func (sr *Series) retain(chunks []*Chunk) []*Chunk {
	if maxAge := sr.st.cfg.MaxAge; maxAge > 0 {
		cutoff := sr.lastTS - int64(maxAge)
		drop := 0
		for drop < len(chunks)-1 && chunks[drop].MaxTS < cutoff {
			sr.st.droppedN.Add(uint64(chunks[drop].Count))
			drop++
		}
		chunks = chunks[drop:]
	}
	if max := sr.st.cfg.MaxChunks; max > 0 && len(chunks) > max {
		for _, evicted := range chunks[:len(chunks)-max] {
			sr.st.droppedN.Add(uint64(evicted.Count))
		}
		chunks = chunks[len(chunks)-max:]
	}
	return chunks
}

// load installs samples read back from disk segments as sealed chunks,
// without echoing them to the writer (they are already on disk). It
// runs during New, before the store is shared, but locks anyway.
func (sr *Series) load(samples []Sample) {
	if len(samples) == 0 {
		return
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	size := len(sr.ts)
	old := sr.sealed.Load()
	var chunks []*Chunk
	if old != nil {
		chunks = append(chunks, old.chunks...)
	}
	ts := make([]int64, 0, size)
	vals := make([]float64, 0, size)
	last := int64(math.MinInt64)
	for i := 0; i < len(samples); i += size {
		end := i + size
		if end > len(samples) {
			end = len(samples)
		}
		ts, vals = ts[:0], vals[:0]
		for _, smp := range samples[i:end] {
			// Re-impose the append-path clamp: per-series order was
			// non-decreasing when written, but be safe against
			// hand-edited or mixed segment directories.
			if smp.TS < last {
				smp.TS = last
			}
			last = smp.TS
			ts = append(ts, smp.TS)
			vals = append(vals, smp.V)
		}
		c, err := EncodeChunk(ts, vals)
		if err != nil {
			continue // unreachable: end > i
		}
		chunks = append(chunks, c)
	}
	if sr.total == 0 {
		sr.firstTS = samples[0].TS
	}
	if last > sr.lastTS {
		sr.lastTS = last
	}
	sr.total += uint64(len(samples))
	sr.st.loadedN.Add(uint64(len(samples)))
	sr.sealed.Store(&chunkList{chunks: sr.retain(chunks)})
}

// Seal forces the pending hot samples into a sealed chunk (a no-op when
// the hot buffer is empty). Benchmarks call it so bytes/sample reflects
// every appended sample; the backend calls it on shutdown so the disk
// segments carry the tail.
func (sr *Series) Seal() {
	sr.mu.Lock()
	if sr.n > 0 {
		sr.seal()
	}
	sr.mu.Unlock()
}

// SealAll force-seals every series' pending samples.
func (s *Store) SealAll() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		handles := make([]*Series, 0, len(sh.series))
		for _, sr := range sh.series {
			handles = append(handles, sr)
		}
		sh.mu.RUnlock()
		for _, sr := range handles {
			sr.Seal()
		}
	}
}

// snapshot captures a consistent view for a query: the sealed list and a
// copy of the hot tail, under one brief lock so a concurrent seal can
// neither hide nor double-count samples.
func (sr *Series) snapshot(hot []Sample) (*chunkList, []Sample) {
	sr.mu.Lock()
	list := sr.sealed.Load()
	for i := 0; i < sr.n; i++ {
		hot = append(hot, Sample{TS: sr.ts[i], V: sr.vals[i]})
	}
	sr.mu.Unlock()
	return list, hot
}

// QueryRaw returns the retained samples with from <= TS <= to in append
// order, bit-identical to what was appended. Sealed chunks outside the
// window are pruned by their aggregates without decoding.
func (sr *Series) QueryRaw(from, to int64) ([]Sample, error) {
	hot := make([]Sample, 0, len(sr.ts))
	list, hot := sr.snapshot(hot)
	var out []Sample
	scratch := make([]Sample, 0, len(sr.ts))
	if list != nil {
		for _, c := range list.chunks {
			if c.MaxTS < from || c.MinTS > to {
				continue
			}
			scratch = scratch[:0]
			var err error
			scratch, err = c.Decode(scratch)
			if err != nil {
				return nil, err
			}
			for _, smp := range scratch {
				if smp.TS >= from && smp.TS <= to {
					out = append(out, smp)
				}
			}
		}
	}
	for _, smp := range hot {
		if smp.TS >= from && smp.TS <= to {
			out = append(out, smp)
		}
	}
	return out, nil
}

// Bucket is one downsampled interval: [TS, TS+step) in the query's
// bucket grid. Min/Max skip NaN samples; Mean is Sum/Count over the
// bucket's samples in append order; Last is the final sample.
type Bucket struct {
	TS    int64   `json:"t"`
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Last  float64 `json:"last"`
}

// QueryBuckets downsamples the window into step-wide buckets aligned to
// from; empty buckets are omitted. The aggregation is defined sample by
// sample in append order (exactly what a brute-force pass over QueryRaw
// computes — pinned by test), so downsampled reads are a pure function
// of the raw ones.
func (sr *Series) QueryBuckets(from, to, step int64) ([]Bucket, error) {
	if step <= 0 {
		return nil, fmt.Errorf("tsdb: bucket step must be positive")
	}
	raw, err := sr.QueryRaw(from, to)
	if err != nil {
		return nil, err
	}
	return Downsample(raw, from, step), nil
}

// Downsample buckets samples (sorted by TS) into step-wide intervals
// aligned to origin. It is exported as the reference aggregation: the
// query path and the test-suite brute force share it by construction.
func Downsample(samples []Sample, origin, step int64) []Bucket {
	var out []Bucket
	var cur *Bucket
	var curIdx int64
	var sum float64
	for _, smp := range samples {
		idx := (smp.TS - origin) / step
		if cur == nil || idx != curIdx {
			if cur != nil {
				cur.Mean = sum / float64(cur.Count)
			}
			out = append(out, Bucket{TS: origin + idx*step, Min: math.NaN(), Max: math.NaN()})
			cur = &out[len(out)-1]
			curIdx = idx
			sum = 0
		}
		cur.Count++
		cur.Last = smp.V
		sum += smp.V
		if !math.IsNaN(smp.V) {
			if math.IsNaN(cur.Min) || smp.V < cur.Min {
				cur.Min = smp.V
			}
			if math.IsNaN(cur.Max) || smp.V > cur.Max {
				cur.Max = smp.V
			}
		}
	}
	if cur != nil {
		cur.Mean = sum / float64(cur.Count)
	}
	return out
}
