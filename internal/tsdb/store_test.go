package tsdb

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func sameSamples(t *testing.T, got, want []Sample) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d samples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].TS != want[i].TS || math.Float64bits(got[i].V) != math.Float64bits(want[i].V) {
			t.Fatalf("sample %d: (%d, %016x), want (%d, %016x)",
				i, got[i].TS, math.Float64bits(got[i].V), want[i].TS, math.Float64bits(want[i].V))
		}
	}
}

// TestQueryRawBitExact appends a series spanning many sealed chunks plus
// a hot tail and demands QueryRaw return every sample bit-identically —
// the acceptance contract behind /api/history?res=raw.
func TestQueryRawBitExact(t *testing.T) {
	st := MustNew(Config{ChunkSamples: 16})
	sr := st.Series(7, "count")
	rng := rand.New(rand.NewSource(11))
	var want []Sample
	ts := int64(0)
	for i := 0; i < 1000; i++ {
		ts += rng.Int63n(3_000_000_000)
		v := rng.NormFloat64() * 40
		switch i % 10 {
		case 3:
			v = math.NaN()
		case 7:
			v = math.Float64frombits(rng.Uint64())
		}
		sr.Append(ts, v)
		want = append(want, Sample{TS: ts, V: v})
	}
	got, err := sr.QueryRaw(math.MinInt64, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	sameSamples(t, got, want)

	// A bounded window prunes whole chunks yet returns the exact subset.
	from, to := want[200].TS, want[700].TS
	var sub []Sample
	for _, s := range want {
		if s.TS >= from && s.TS <= to {
			sub = append(sub, s)
		}
	}
	got, err = sr.QueryRaw(from, to)
	if err != nil {
		t.Fatal(err)
	}
	sameSamples(t, got, sub)
}

func TestAppendClampsRegressingTimestamps(t *testing.T) {
	st := MustNew(Config{})
	sr := st.Series(1, "count")
	sr.Append(100, 1)
	sr.Append(50, 2) // regresses: clamped to 100
	sr.Append(150, 3)
	got, err := sr.QueryRaw(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sameSamples(t, got, []Sample{{100, 1}, {100, 2}, {150, 3}})
}

// bruteBuckets is the independent downsampling reference: a direct
// translation of the Bucket definition, sharing no code with the store.
func bruteBuckets(samples []Sample, origin, step int64) []Bucket {
	m := map[int64]*Bucket{}
	var order []int64
	sums := map[int64]float64{}
	for _, s := range samples {
		idx := (s.TS - origin) / step
		b, ok := m[idx]
		if !ok {
			b = &Bucket{TS: origin + idx*step, Min: math.NaN(), Max: math.NaN()}
			m[idx] = b
			order = append(order, idx)
		}
		b.Count++
		b.Last = s.V
		sums[idx] += s.V
		if !math.IsNaN(s.V) {
			if math.IsNaN(b.Min) || s.V < b.Min {
				b.Min = s.V
			}
			if math.IsNaN(b.Max) || s.V > b.Max {
				b.Max = s.V
			}
		}
	}
	out := make([]Bucket, 0, len(order))
	for _, idx := range order {
		b := *m[idx]
		b.Mean = sums[idx] / float64(b.Count)
		out = append(out, b)
	}
	return out
}

func TestQueryBucketsMatchesBruteForce(t *testing.T) {
	st := MustNew(Config{ChunkSamples: 32})
	sr := st.Series(9, "pole_temp_c")
	rng := rand.New(rand.NewSource(5))
	ts := int64(1_000_000)
	var raw []Sample
	for i := 0; i < 2000; i++ {
		ts += rng.Int63n(800_000_000)
		v := 20 + 10*math.Sin(float64(i)/50) + rng.Float64()
		if i%97 == 0 {
			v = math.NaN()
		}
		sr.Append(ts, v)
		raw = append(raw, Sample{TS: ts, V: v})
	}
	for _, step := range []int64{1_000_000_000, 7_777_777, 60_000_000_000} {
		got, err := sr.QueryBuckets(0, math.MaxInt64, step)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteBuckets(raw, 0, step)
		if len(got) != len(want) {
			t.Fatalf("step %d: %d buckets, want %d", step, len(got), len(want))
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.TS != w.TS || g.Count != w.Count ||
				math.Float64bits(g.Min) != math.Float64bits(w.Min) ||
				math.Float64bits(g.Max) != math.Float64bits(w.Max) ||
				math.Float64bits(g.Mean) != math.Float64bits(w.Mean) ||
				math.Float64bits(g.Last) != math.Float64bits(w.Last) {
				t.Fatalf("step %d bucket %d: %+v, want %+v", step, i, g, w)
			}
		}
	}
	if _, err := sr.QueryBuckets(0, 1, 0); err == nil {
		t.Error("zero step accepted")
	}
}

func TestStatsConservation(t *testing.T) {
	st := MustNew(Config{ChunkSamples: 8})
	for pole := uint32(1); pole <= 5; pole++ {
		sr := st.Series(pole, "count")
		for i := 0; i < 100; i++ {
			sr.Append(int64(i)*1_000_000_000, float64(i))
		}
	}
	stats := st.Stats()
	if stats.Series != 5 {
		t.Errorf("series = %d, want 5", stats.Series)
	}
	if stats.Appended != 500 || stats.Retained != 500 {
		t.Errorf("appended/retained = %d/%d, want 500/500 (all samples conserved)", stats.Appended, stats.Retained)
	}
	if stats.DroppedSamples != 0 {
		t.Errorf("dropped = %d, want 0", stats.DroppedSamples)
	}
	// Sealing happens on the append after the buffer fills: seals fire at
	// appends 9, 17, …, 97 — twelve chunks of 8, so 96 sealed and 4 hot
	// per series.
	if stats.SealedSamples != 480 {
		t.Errorf("sealed = %d, want 480", stats.SealedSamples)
	}
	// 8-sample chunks amortize the 19-byte chunk header poorly — the
	// production default of 512 is what the ≥8x CI gate exercises — but
	// even these tiny chunks must beat 16-byte rows.
	if stats.BytesPerSample <= 0 || stats.CompressionVs16 < 3 {
		t.Errorf("bytes/sample %.2f, compression %.1fx — regular integral series should compress well",
			stats.BytesPerSample, stats.CompressionVs16)
	}
}

func TestRingEvictionAccounting(t *testing.T) {
	st := MustNew(Config{ChunkSamples: 4, MaxChunks: 2})
	sr := st.Series(1, "count")
	for i := 0; i < 20; i++ {
		sr.Append(int64(i), float64(i))
	}
	// Seals fire on the append after each fill: 4 sealed chunks (samples
	// 0–15), 4 hot (16–19). The ring keeps the newest 2 sealed chunks, so
	// chunks 0–3 and 4–7 were evicted.
	stats := st.Stats()
	if stats.DroppedSamples != 8 {
		t.Errorf("dropped = %d, want 8", stats.DroppedSamples)
	}
	if stats.Appended != 20 || stats.Retained != 12 {
		t.Errorf("appended/retained = %d/%d, want 20/12", stats.Appended, stats.Retained)
	}
	got, err := sr.QueryRaw(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Sample, 0, 12)
	for i := int64(8); i < 20; i++ {
		want = append(want, Sample{TS: i, V: float64(i)})
	}
	sameSamples(t, got, want)
}

func TestPoleSeriesListing(t *testing.T) {
	st := MustNew(Config{})
	st.Append(3, "count", 10, 1)
	st.Append(3, "count", 20, 2)
	st.Append(3, "ambient_c", 15, 21.5)
	st.Append(4, "count", 10, 1) // other pole, must not appear
	metas := st.PoleSeries(3)
	if len(metas) != 2 {
		t.Fatalf("%d series, want 2", len(metas))
	}
	if metas[0].Name != "ambient_c" || metas[1].Name != "count" {
		t.Errorf("names %q, %q — want ambient_c, count (sorted)", metas[0].Name, metas[1].Name)
	}
	if metas[1].Samples != 2 || metas[1].FirstTS != 10 || metas[1].LastTS != 20 {
		t.Errorf("count meta %+v", metas[1])
	}
}

// TestConcurrentAppendQuery races appenders against raw and bucketed
// readers and the stats walk; under -race this is the memory-model proof
// that historical reads never tear the append path.
func TestConcurrentAppendQuery(t *testing.T) {
	st := MustNew(Config{ChunkSamples: 32, Shards: 4})
	const (
		writers = 4
		perPole = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(pole uint32) {
			defer wg.Done()
			sr := st.Series(pole, "count")
			for i := 0; i < perPole; i++ {
				sr.Append(int64(i)*1_000_000, float64(i))
			}
		}(uint32(w + 1))
	}
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sr := st.Series(uint32(r+1), "count")
				raw, err := sr.QueryRaw(0, math.MaxInt64)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 1; i < len(raw); i++ {
					if raw[i].V != raw[i-1].V+1 {
						t.Errorf("reader saw torn sequence at %d: %v after %v", i, raw[i].V, raw[i-1].V)
						return
					}
				}
				if _, err := sr.QueryBuckets(0, math.MaxInt64, 10_000_000); err != nil {
					t.Error(err)
					return
				}
				st.Stats()
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	stats := st.Stats()
	if stats.Appended != writers*perPole || stats.Retained != writers*perPole {
		t.Fatalf("appended/retained = %d/%d, want %d each", stats.Appended, stats.Retained, writers*perPole)
	}
}

// TestAppendSteadyStateAllocs is the hot-path allocation gate: an append
// that lands in the hot buffer allocates nothing at all, and across many
// seals the amortized cost stays under one allocation per sample.
func TestAppendSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector shadow memory allocates; gate runs in non-race CI job")
	}
	st := MustNew(Config{ChunkSamples: 1 << 16})
	sr := st.Series(1, "count")
	ts := int64(0)
	if allocs := testing.AllocsPerRun(10_000, func() {
		ts += 1_000_000
		sr.Append(ts, 5)
	}); allocs != 0 {
		t.Errorf("in-buffer append allocated %.2f objects/op, want 0", allocs)
	}

	sealed := MustNew(Config{ChunkSamples: 256})
	sr2 := sealed.Series(1, "count")
	ts = 0
	if allocs := testing.AllocsPerRun(100_000, func() {
		ts += 1_000_000
		sr2.Append(ts, float64(ts%7))
	}); allocs > 0.5 {
		t.Errorf("append across seals amortized to %.3f allocs/op, want <= 0.5", allocs)
	}
}

func TestSealAllAndForceSeal(t *testing.T) {
	st := MustNew(Config{ChunkSamples: 64})
	sr := st.Series(1, "count")
	for i := 0; i < 10; i++ {
		sr.Append(int64(i), float64(i))
	}
	if got := st.Stats().SealedSamples; got != 0 {
		t.Fatalf("sealed %d before force-seal, want 0", got)
	}
	st.SealAll()
	if got := st.Stats().SealedSamples; got != 10 {
		t.Fatalf("sealed %d after SealAll, want 10", got)
	}
	sr.Seal() // empty hot buffer: no-op
	if got := st.Stats().SealedSamples; got != 10 {
		t.Fatalf("sealed %d after empty Seal, want 10", got)
	}
	got, err := sr.QueryRaw(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("%d samples after seal, want 10", len(got))
	}
}

func TestLookupAndSharding(t *testing.T) {
	st := MustNew(Config{Shards: 8})
	if _, ok := st.Lookup(1, "count"); ok {
		t.Error("lookup invented a series")
	}
	a := st.Series(1, "count")
	b := st.Series(1, "count")
	if a != b {
		t.Error("Series returned distinct handles for one key")
	}
	if got, ok := st.Lookup(1, "count"); !ok || got != a {
		t.Error("Lookup did not find the created series")
	}
	if st.Series(2, "count") == a {
		t.Error("distinct poles shared a handle")
	}
}
