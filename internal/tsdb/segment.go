package tsdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Segment file format. A segment is a self-contained run of sealed
// chunks: before a series' first chunk in any given file, the file
// carries that series' schema record — the "periodic schema header" of
// the FTDC format, re-emitted per segment so a reader can start from any
// file without the ones before it.
//
//	header  := "HTSD" u8(version=1)
//	record  := u8(kind) u32(be payload length) payload
//	schema  := kind 1: u32(series id) u32(pole) u16(name length) name
//	chunk   := kind 2: u32(series id) chunk payload (codec.go format)
//
// Files are named seg-NNNNNN.htsd with a monotonically increasing
// sequence number; the writer rotates once a file exceeds SegmentBytes
// and deletes the oldest files beyond MaxSegments.
const (
	segmentMagic   = "HTSD"
	segmentVersion = 1

	recSchema = 1
	recChunk  = 2
)

// segmentWriter streams sealed chunks to rotated segment files. Write
// errors are sticky: the first one is kept, later writes become no-ops,
// and the store surfaces it through Close — a full disk must never take
// down the in-memory capture path.
type segmentWriter struct {
	mu          sync.Mutex
	dir         string
	maxBytes    int
	maxSegments int
	maxAge      time.Duration

	f         *os.File
	bw        *bufio.Writer
	written   int
	seq       int
	announced map[uint32]bool
	err       error
}

func newSegmentWriter(dir string, maxBytes, maxSegments int, maxAge time.Duration) (*segmentWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: segment dir: %w", err)
	}
	w := &segmentWriter{dir: dir, maxBytes: maxBytes, maxSegments: maxSegments, maxAge: maxAge}
	// Resume the sequence after any existing segments so restarts never
	// clobber retained history.
	existing, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if n := len(existing); n > 0 {
		fmt.Sscanf(filepath.Base(existing[n-1]), "seg-%d.htsd", &w.seq)
	}
	if err := w.rotate(); err != nil {
		return nil, err
	}
	return w, nil
}

// listSegments returns the directory's segment files sorted by name
// (sequence order, since the number is zero-padded).
func listSegments(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.htsd"))
	if err != nil {
		return nil, fmt.Errorf("tsdb: list segments: %w", err)
	}
	sort.Strings(matches)
	return matches, nil
}

// rotate opens the next segment file and prunes old ones. Caller holds
// w.mu (or is the constructor).
func (w *segmentWriter) rotate() error {
	if w.f != nil {
		if err := w.bw.Flush(); err != nil && w.err == nil {
			w.err = err
		}
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = err
		}
	}
	w.seq++
	path := filepath.Join(w.dir, fmt.Sprintf("seg-%06d.htsd", w.seq))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tsdb: segment create: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.written = 0
	w.announced = make(map[uint32]bool)
	if _, err := w.bw.WriteString(segmentMagic); err != nil {
		return err
	}
	if err := w.bw.WriteByte(segmentVersion); err != nil {
		return err
	}
	w.written = len(segmentMagic) + 1
	w.prune()
	return nil
}

// prune deletes old segments past either retention bound: the count cap
// (oldest beyond MaxSegments) and the age cap (modification time older
// than MaxAge). The just-opened active file is never pruned. Age checks
// run only at rotation, so an idle store keeps its last files — age
// expiry of in-memory chunks (store.go) is what bounds what queries see.
func (w *segmentWriter) prune() {
	if w.maxSegments <= 0 && w.maxAge <= 0 {
		return
	}
	files, err := listSegments(w.dir)
	if err != nil {
		return
	}
	if w.maxSegments > 0 {
		for len(files) > w.maxSegments {
			os.Remove(files[0])
			files = files[1:]
		}
	}
	if w.maxAge > 0 {
		cutoff := time.Now().Add(-w.maxAge)
		for _, path := range files {
			if filepath.Base(path) == fmt.Sprintf("seg-%06d.htsd", w.seq) {
				continue
			}
			if info, err := os.Stat(path); err == nil && info.ModTime().Before(cutoff) {
				os.Remove(path)
			}
		}
	}
}

func (w *segmentWriter) record(kind byte, payload []byte) {
	if w.err != nil {
		return
	}
	var hdr [5]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.err = err
		return
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.err = err
		return
	}
	w.written += len(hdr) + len(payload)
}

// writeChunk appends one sealed chunk, emitting the series' schema
// record first if this segment has not announced it yet.
func (w *segmentWriter) writeChunk(id uint32, key SeriesKey, data []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if !w.announced[id] {
		schema := make([]byte, 0, 10+len(key.Name))
		schema = binary.BigEndian.AppendUint32(schema, id)
		schema = binary.BigEndian.AppendUint32(schema, key.Pole)
		schema = binary.BigEndian.AppendUint16(schema, uint16(len(key.Name)))
		schema = append(schema, key.Name...)
		w.record(recSchema, schema)
		w.announced[id] = true
	}
	payload := make([]byte, 0, 4+len(data))
	payload = binary.BigEndian.AppendUint32(payload, id)
	payload = append(payload, data...)
	w.record(recChunk, payload)
	if w.written >= w.maxBytes {
		if err := w.rotate(); err != nil && w.err == nil {
			w.err = err
		}
	}
}

func (w *segmentWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = err
	}
	w.f = nil
	return w.err
}

// SegmentSeries is one series' content within one segment file.
type SegmentSeries struct {
	Key     SeriesKey
	Samples []Sample
}

// ReadSegment decodes one segment file into its per-series samples, in
// order of first appearance. It needs nothing beyond the file itself:
// the schema records a segment carries are, by construction, exactly the
// ones its chunks reference.
func ReadSegment(path string) ([]SegmentSeries, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, len(segmentMagic)+1)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("tsdb: segment header: %w", err)
	}
	if string(hdr[:len(segmentMagic)]) != segmentMagic {
		return nil, fmt.Errorf("tsdb: bad segment magic %q", hdr[:len(segmentMagic)])
	}
	if hdr[len(segmentMagic)] != segmentVersion {
		return nil, fmt.Errorf("tsdb: unsupported segment version %d", hdr[len(segmentMagic)])
	}

	keys := make(map[uint32]SeriesKey)
	index := make(map[uint32]int)
	var out []SegmentSeries
	var rec [5]byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("tsdb: segment record header: %w", err)
		}
		size := binary.BigEndian.Uint32(rec[1:])
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			return out, fmt.Errorf("tsdb: segment record body: %w", err)
		}
		switch rec[0] {
		case recSchema:
			if len(payload) < 10 {
				return out, fmt.Errorf("tsdb: short schema record")
			}
			id := binary.BigEndian.Uint32(payload)
			pole := binary.BigEndian.Uint32(payload[4:])
			nameLen := int(binary.BigEndian.Uint16(payload[8:]))
			if len(payload) < 10+nameLen {
				return out, fmt.Errorf("tsdb: truncated schema name")
			}
			keys[id] = SeriesKey{Pole: pole, Name: string(payload[10 : 10+nameLen])}
		case recChunk:
			if len(payload) < 4 {
				return out, fmt.Errorf("tsdb: short chunk record")
			}
			id := binary.BigEndian.Uint32(payload)
			key, ok := keys[id]
			if !ok {
				return out, fmt.Errorf("tsdb: chunk for unannounced series %d", id)
			}
			i, ok := index[id]
			if !ok {
				i = len(out)
				index[id] = i
				out = append(out, SegmentSeries{Key: key})
			}
			samples, err := DecodeChunkData(payload[4:], out[i].Samples)
			if err != nil {
				return out, err
			}
			out[i].Samples = samples
		default:
			return out, fmt.Errorf("tsdb: unknown record kind %d", rec[0])
		}
	}
}

// ReadDir reads every segment in the directory in sequence order and
// merges the per-series samples across files.
func ReadDir(dir string) ([]SegmentSeries, error) {
	files, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	index := make(map[SeriesKey]int)
	var out []SegmentSeries
	for _, path := range files {
		segs, err := ReadSegment(path)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
		}
		for _, ss := range segs {
			i, ok := index[ss.Key]
			if !ok {
				i = len(out)
				index[ss.Key] = i
				out = append(out, SegmentSeries{Key: ss.Key})
			}
			out[i].Samples = append(out[i].Samples, ss.Samples...)
		}
	}
	return out, nil
}
