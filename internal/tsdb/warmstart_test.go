package tsdb

import (
	"os"
	"testing"
	"time"
)

// TestWarmStartRoundTrip seals two poles' series to disk, reopens the
// directory with WarmStart, and requires bit-identical reads plus
// continued appends that a third generation also restores.
func TestWarmStartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{ChunkSamples: 8, Dir: dir}

	st1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pole := uint32(1); pole <= 2; pole++ {
		sr := st1.Series(pole, "count")
		for i := 0; i < 50; i++ {
			sr.Append(int64(1000*i), float64(pole)*100+float64(i))
		}
	}
	st1.SealAll()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.WarmStart = true
	st2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().Loaded; got != 100 {
		t.Fatalf("loaded %d samples, want 100", got)
	}
	for pole := uint32(1); pole <= 2; pole++ {
		sr, ok := st2.Lookup(pole, "count")
		if !ok {
			t.Fatalf("pole %d series missing after warm start", pole)
		}
		got, err := sr.QueryRaw(0, 1<<60)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 50 {
			t.Fatalf("pole %d: %d samples after warm start, want 50", pole, len(got))
		}
		for i, smp := range got {
			if smp.TS != int64(1000*i) || smp.V != float64(pole)*100+float64(i) {
				t.Fatalf("pole %d sample %d = %+v", pole, i, smp)
			}
		}
	}

	// Appends continue past the restored history and persist in turn.
	sr := st2.Series(1, "count")
	for i := 50; i < 60; i++ {
		sr.Append(int64(1000*i), float64(100+i))
	}
	st2.SealAll()
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	st3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	sr3, _ := st3.Lookup(1, "count")
	got, err := sr3.QueryRaw(0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("third generation sees %d samples, want 60", len(got))
	}
	if got[59].TS != 59000 || got[59].V != 159 {
		t.Fatalf("tail sample = %+v", got[59])
	}
}

// TestWarmStartOffByDefault pins that reopening without the flag starts
// empty (the pre-existing behavior) while leaving the files alone.
func TestWarmStartOffByDefault(t *testing.T) {
	dir := t.TempDir()
	st1, err := New(Config{ChunkSamples: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sr := st1.Series(7, "count")
	for i := 0; i < 12; i++ {
		sr.Append(int64(i), float64(i))
	}
	st1.SealAll()
	st1.Close()

	st2, err := New(Config{ChunkSamples: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().Loaded; got != 0 {
		t.Fatalf("loaded %d without WarmStart, want 0", got)
	}
	if _, ok := st2.Lookup(7, "count"); ok {
		t.Fatal("series exists without WarmStart")
	}
}

// TestMaxAgeExpiry drives a series far past a MaxAge horizon and checks
// that old sealed chunks expire at seal time with eviction accounting
// identical to the ring's: Retained + Dropped == Appended.
func TestMaxAgeExpiry(t *testing.T) {
	st := MustNew(Config{ChunkSamples: 4, MaxChunks: -1, MaxAge: 100 * time.Nanosecond})
	sr := st.Series(1, "count")
	// 1ns per sample: by the final seal the first chunks are far older
	// than the 100ns horizon.
	const n = 400
	for i := 0; i < n; i++ {
		sr.Append(int64(i), float64(i))
	}
	sr.Seal()
	stats := st.Stats()
	if stats.DroppedSamples == 0 {
		t.Fatal("no samples expired by MaxAge")
	}
	if stats.Retained+stats.DroppedSamples != stats.Appended {
		t.Fatalf("conservation broken: retained %d + dropped %d != appended %d",
			stats.Retained, stats.DroppedSamples, stats.Appended)
	}
	got, err := sr.QueryRaw(0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	// Whole chunks expire, so the oldest surviving sample is within
	// MaxAge + one chunk span of the newest.
	if first := got[0].TS; first < n-1-100-4 || first > n-1 {
		t.Fatalf("oldest surviving ts = %d", first)
	}
	for i := 1; i < len(got); i++ {
		if got[i].TS != got[i-1].TS+1 {
			t.Fatalf("gap in surviving samples at %d", i)
		}
	}
}

// TestMaxAgeNeverExpiresNewestChunk pins the guard: even when every
// sealed chunk is past the horizon, the newest survives.
func TestMaxAgeNeverExpiresNewestChunk(t *testing.T) {
	st := MustNew(Config{ChunkSamples: 4, MaxChunks: -1, MaxAge: 1 * time.Nanosecond})
	sr := st.Series(1, "count")
	for i := 0; i < 16; i++ {
		sr.Append(int64(1000*i), float64(i))
	}
	sr.Seal()
	got, err := sr.QueryRaw(0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("%d samples survive, want the newest chunk's 4", len(got))
	}
	if got[0].TS != 12000 {
		t.Fatalf("surviving chunk starts at %d, want 12000", got[0].TS)
	}
}

// TestMaxAgeAppliesAtWarmStart expires aged history during load: a
// restart with MaxAge only restores the still-live window, with the
// expired samples accounted as dropped.
func TestMaxAgeAppliesAtWarmStart(t *testing.T) {
	dir := t.TempDir()
	st1, err := New(Config{ChunkSamples: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sr := st1.Series(1, "count")
	for i := 0; i < 40; i++ {
		sr.Append(int64(i), float64(i))
	}
	st1.SealAll()
	st1.Close()

	st2, err := New(Config{ChunkSamples: 4, Dir: dir, WarmStart: true, MaxAge: 10 * time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.Stats()
	if stats.Loaded != 40 {
		t.Fatalf("loaded %d, want 40 (expiry is accounted separately)", stats.Loaded)
	}
	if stats.Retained+stats.DroppedSamples != stats.Loaded {
		t.Fatalf("load conservation broken: retained %d + dropped %d != loaded %d",
			stats.Retained, stats.DroppedSamples, stats.Loaded)
	}
	sr2, _ := st2.Lookup(1, "count")
	got, err := sr2.QueryRaw(0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 40 || len(got) == 0 {
		t.Fatalf("%d samples survive load expiry, want a strict subset", len(got))
	}
	if got[len(got)-1].TS != 39 {
		t.Fatalf("newest sample %d, want 39", got[len(got)-1].TS)
	}
}

// TestSegmentAgePrune ages segment files on disk (mtime) and checks
// rotation deletes them while sparing the active file.
func TestSegmentAgePrune(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every few seals rotates.
	st1, err := New(Config{ChunkSamples: 4, Dir: dir, SegmentBytes: 64, MaxSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	sr := st1.Series(1, "count")
	for i := 0; i < 200; i++ {
		sr.Append(int64(i), float64(i))
	}
	st1.SealAll()
	st1.Close()
	files, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("only %d segments; the fixture needs several", len(files))
	}
	old := time.Now().Add(-48 * time.Hour)
	for _, f := range files {
		if err := os.Chtimes(f, old, old); err != nil {
			t.Fatal(err)
		}
	}

	// Opening a writer rotates once, which prunes aged files.
	st2, err := New(Config{ChunkSamples: 4, Dir: dir, SegmentBytes: 64, MaxSegments: -1, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	after, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 {
		t.Fatalf("%d segments survive age prune, want only the active file", len(after))
	}
}
