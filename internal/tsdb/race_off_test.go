//go:build !race

package tsdb

// raceEnabled is false in normal builds; see race_on_test.go.
const raceEnabled = false
