//go:build race

package tsdb

// raceEnabled reports whether the race detector is instrumenting this
// test binary, so the allocation gate skips itself under -race.
const raceEnabled = true
