package tsdb

import (
	"context"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hawccc/internal/obs"
)

// DefaultSampleInterval is the capture cadence when SamplerConfig leaves
// Interval zero — the FTDC-style "one diagnostic document per second".
const DefaultSampleInterval = time.Second

// SamplerConfig parameterizes a Sampler.
type SamplerConfig struct {
	// Interval is the capture cadence (0 selects DefaultSampleInterval).
	Interval time.Duration
	// PoleLabel names the label whose numeric value routes a series to a
	// pole's history ("pole" when empty). Series without it are stored
	// under pole 0 — process-wide diagnostics.
	PoleLabel string
	// Quantile is the histogram quantile captured alongside count and
	// sum (0 selects 0.99).
	Quantile float64
	// Now overrides the clock for tests.
	Now func() time.Time
}

// Sampler periodically captures every instrument of an obs.Registry into
// the store: counters and gauges as one series each, histograms as
// count/sum/quantile sub-series. It reads instruments through the typed
// Registry.EachSeries walk — no Prometheus text is rendered or parsed —
// and caches the Series handles per instrument, so a steady-state tick
// does no map-building beyond first sight of a series.
type Sampler struct {
	st  *Store
	reg *obs.Registry
	cfg SamplerConfig

	// cache keys on the instrument pointer: instruments are create-once
	// in a registry, so pointer identity is series identity.
	cache map[any]*capturedSeries

	ticks    atomic.Uint64
	captured atomic.Uint64
}

// capturedSeries is the store-side handle set for one instrument.
type capturedSeries struct {
	value *Series // counter or gauge
	count *Series // histogram observation count
	sum   *Series // histogram observation sum
	quant *Series // histogram quantile
}

// NewSampler builds a sampler over reg writing into st.
func NewSampler(st *Store, reg *obs.Registry, cfg SamplerConfig) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultSampleInterval
	}
	if cfg.PoleLabel == "" {
		cfg.PoleLabel = "pole"
	}
	if cfg.Quantile <= 0 || cfg.Quantile >= 1 {
		cfg.Quantile = 0.99
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Sampler{st: st, reg: reg, cfg: cfg, cache: make(map[any]*capturedSeries)}
}

// seriesFor resolves (and caches) the store handles for one registry
// series: the pole comes from the configured label when it parses as a
// uint32, and the store-side name is the metric name plus any remaining
// labels rendered in canonical sorted order.
func (s *Sampler) seriesFor(si obs.SeriesInfo) *capturedSeries {
	var key any
	switch {
	case si.Counter != nil:
		key = si.Counter
	case si.Gauge != nil:
		key = si.Gauge
	default:
		key = si.Histogram
	}
	if cs, ok := s.cache[key]; ok {
		return cs
	}

	pole := uint32(0)
	var b strings.Builder
	b.WriteString(si.Name)
	for _, l := range si.Labels {
		if l.Key == s.cfg.PoleLabel {
			if id, err := strconv.ParseUint(l.Value, 10, 32); err == nil {
				pole = uint32(id)
				continue
			}
		}
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	name := b.String()

	cs := &capturedSeries{}
	if si.Histogram != nil {
		cs.count = s.st.Series(pole, name+":count")
		cs.sum = s.st.Series(pole, name+":sum")
		q := strconv.FormatFloat(s.cfg.Quantile*100, 'g', -1, 64)
		cs.quant = s.st.Series(pole, name+":p"+q)
	} else {
		cs.value = s.st.Series(pole, name)
	}
	s.cache[key] = cs
	return cs
}

// SampleOnce captures one tick and returns the samples appended. It is
// not safe for concurrent use with itself or Run (the handle cache is
// unsynchronized by design — one capture goroutine, like one FTDC
// thread); it is safe against concurrent appends and queries.
func (s *Sampler) SampleOnce() int {
	now := s.cfg.Now().UnixNano()
	appended := 0
	s.reg.EachSeries(func(si obs.SeriesInfo) {
		cs := s.seriesFor(si)
		switch {
		case si.Counter != nil:
			cs.value.Append(now, float64(si.Counter.Value()))
			appended++
		case si.Gauge != nil:
			cs.value.Append(now, si.Gauge.Value())
			appended++
		case si.Histogram != nil:
			snap := si.Histogram.Snapshot()
			cs.count.Append(now, float64(snap.Count))
			cs.sum.Append(now, snap.Sum)
			cs.quant.Append(now, snap.Quantile(s.cfg.Quantile))
			appended += 3
		}
	})
	s.ticks.Add(1)
	s.captured.Add(uint64(appended))
	return appended
}

// Run captures on the configured interval until ctx is done, then takes
// one final sample so the captured history covers the full run.
func (s *Sampler) Run(ctx context.Context) {
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			s.SampleOnce()
			return
		case <-t.C:
			s.SampleOnce()
		}
	}
}

// Ticks returns how many capture ticks have run.
func (s *Sampler) Ticks() uint64 { return s.ticks.Load() }

// Captured returns the lifetime samples the sampler has appended.
func (s *Sampler) Captured() uint64 { return s.captured.Load() }
