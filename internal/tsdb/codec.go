// Package tsdb is the FTDC-style time-series store behind the campus
// backend's /api/history endpoints: an append-only columnar capture of
// per-pole telemetry series (count, temperature, report latency, and the
// sampled observability instruments) in the spirit of MongoDB's
// full-time-series diagnostic capture — delta / delta-of-delta varint
// encoding with zero-run-length compression, a ring-buffer hot tier per
// series, immutable sealed chunks, and optional disk-backed segment files
// with periodic schema headers so any segment is readable on its own.
//
// The design splits cleanly into three layers:
//
//   - codec.go — the chunk binary format. A chunk is one series' worth of
//     (timestamp, float64) samples: timestamps as zigzag-varint
//     delta-of-delta, values as zigzag-varint deltas of either the int64
//     value (when every sample is integral — counts, byte totals) or the
//     raw IEEE-754 bit pattern (always exact, including NaN payloads).
//     Decoding returns the samples bit-identically: the codec never
//     rounds, scales, or truncates.
//   - store.go — the concurrent store: series handles hash to shards,
//     appends go to a fixed-size hot buffer reused in place, and every
//     ChunkSamples appends the buffer seals into an immutable chunk
//     published through an atomic pointer, so historical reads never
//     block the append path.
//   - segment.go — optional persistence: sealed chunks stream to
//     size-rotated segment files; each file re-emits the schema records
//     for the series it contains before their first chunk.
package tsdb

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Sample is one timestamped value. TS is in nanoseconds since the Unix
// epoch (the wire protocol's own timestamp unit).
type Sample struct {
	TS int64   `json:"t"`
	V  float64 `json:"v"`
}

// MaxChunkSamples bounds the sample count one chunk may claim. The store
// seals far below this; the decoder rejects larger counts so corrupted
// or adversarial payloads cannot demand unbounded allocation (zero
// run-length encoding would otherwise let a few bytes claim billions of
// samples).
const MaxChunkSamples = 1 << 20

// Chunk format constants.
const (
	chunkMagic   = 0xD7
	chunkVersion = 1

	// encBitsDelta encodes value deltas over the raw IEEE-754 bit
	// patterns — exact for every float64 including NaN and -0.
	encBitsDelta = 0
	// encIntDelta encodes value deltas over int64(v) — chosen when every
	// value in the chunk is exactly an integer (counts, cumulative
	// totals), where consecutive deltas are small and varints shrink a
	// sample to a byte or two.
	encIntDelta = 1
)

// Chunk is one sealed, immutable run of a series' samples plus the
// aggregates queries use to prune and summarize without decoding.
type Chunk struct {
	MinTS, MaxTS int64
	Count        int
	First, Last  float64
	Min, Max     float64 // over non-NaN values; NaN-only chunks keep NaN
	Sum          float64 // in append order; NaN poisons, as it should
	data         []byte
}

// Bytes returns the encoded size of the chunk payload.
func (c *Chunk) Bytes() int { return len(c.data) }

// Data exposes the encoded payload for persistence.
func (c *Chunk) Data() []byte { return c.data }

// zigzag maps signed deltas onto unsigned varint-friendly space.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// deltaWriter emits zigzag varints with FTDC-style zero run-length
// encoding: a literal zero delta is written as the byte 0x00 followed by
// a varint count of additional zeros, so a constant series costs ~2
// bytes per run instead of one byte per sample.
type deltaWriter struct {
	buf     []byte
	zeroRun uint64
}

func (w *deltaWriter) put(d int64) {
	if d == 0 {
		w.zeroRun++
		return
	}
	w.flushZeros()
	w.buf = binary.AppendUvarint(w.buf, zigzag(d))
}

func (w *deltaWriter) flushZeros() {
	if w.zeroRun == 0 {
		return
	}
	w.buf = append(w.buf, 0x00)
	w.buf = binary.AppendUvarint(w.buf, w.zeroRun-1)
	w.zeroRun = 0
}

// deltaReader consumes the stream deltaWriter produces.
type deltaReader struct {
	buf     []byte
	zeroRun uint64
	err     error
}

func (r *deltaReader) next() int64 {
	if r.zeroRun > 0 {
		r.zeroRun--
		return 0
	}
	u, n := binary.Uvarint(r.buf)
	if n <= 0 {
		if r.err == nil {
			r.err = fmt.Errorf("tsdb: truncated delta stream")
		}
		return 0
	}
	r.buf = r.buf[n:]
	if u == 0 {
		extra, n := binary.Uvarint(r.buf)
		if n <= 0 {
			if r.err == nil {
				r.err = fmt.Errorf("tsdb: truncated zero run")
			}
			return 0
		}
		r.buf = r.buf[n:]
		r.zeroRun = extra
		return 0
	}
	return unzigzag(u)
}

// integral reports whether v is exactly representable as an int64 and
// survives the int64 round trip bit-for-bit (this excludes NaN, ±Inf,
// -0, and magnitudes beyond 2^63).
func integral(v float64) bool {
	if v != math.Trunc(v) || math.IsInf(v, 0) {
		return false
	}
	if v == 0 && math.Signbit(v) {
		return false // -0 would decode as +0
	}
	// int64 range check that stays exact at the boundary: 2^63 is
	// representable as a float64, MaxInt64 is not.
	if v < -9.223372036854775808e18 || v >= 9.223372036854775808e18 {
		return false
	}
	return math.Float64bits(float64(int64(v))) == math.Float64bits(v)
}

// EncodeChunk seals samples into a chunk. The samples may carry any
// timestamps and values (the codec is exact regardless); the store layer
// is what guarantees per-series timestamp monotonicity. Layout:
//
//	[0]     magic 0xD7
//	[1]     version 1
//	[2]     flags: bit0 = value encoding (encIntDelta / encBitsDelta)
//	uvarint count n (>= 1)
//	8 bytes ts[0], big-endian uint64(int64)
//	8 bytes Float64bits(v[0]), big-endian
//	uvarint len(timestamp stream) | the stream: zigzag varints with
//	        zero-RLE — d1 = ts[1]-ts[0], then delta-of-delta
//	value stream to end of payload: zigzag varints with zero-RLE —
//	        int64 value deltas or bit-pattern deltas per the flag
func EncodeChunk(ts []int64, vals []float64) (*Chunk, error) {
	n := len(ts)
	if n == 0 || n != len(vals) {
		return nil, fmt.Errorf("tsdb: encode %d timestamps, %d values", n, len(vals))
	}
	enc := encIntDelta
	for _, v := range vals {
		if !integral(v) {
			enc = encBitsDelta
			break
		}
	}

	buf := make([]byte, 0, 32+n/2)
	buf = append(buf, chunkMagic, chunkVersion, byte(enc))
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.BigEndian.AppendUint64(buf, uint64(ts[0]))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(vals[0]))

	var tw deltaWriter
	prevDelta := int64(0)
	for i := 1; i < n; i++ {
		d := ts[i] - ts[i-1]
		tw.put(d - prevDelta)
		prevDelta = d
	}
	tw.flushZeros()
	buf = binary.AppendUvarint(buf, uint64(len(tw.buf)))
	buf = append(buf, tw.buf...)

	var vw deltaWriter
	if enc == encIntDelta {
		prev := int64(vals[0])
		for i := 1; i < n; i++ {
			cur := int64(vals[i])
			vw.put(cur - prev)
			prev = cur
		}
	} else {
		prev := math.Float64bits(vals[0])
		for i := 1; i < n; i++ {
			cur := math.Float64bits(vals[i])
			// Wrapping subtraction on the bit patterns; decode re-adds.
			vw.put(int64(cur - prev))
			prev = cur
		}
	}
	vw.flushZeros()
	buf = append(buf, vw.buf...)

	c := &Chunk{data: buf, Count: n, First: vals[0], Last: vals[n-1]}
	c.MinTS, c.MaxTS = ts[0], ts[0]
	c.Min, c.Max = math.NaN(), math.NaN()
	for i := 0; i < n; i++ {
		if ts[i] < c.MinTS {
			c.MinTS = ts[i]
		}
		if ts[i] > c.MaxTS {
			c.MaxTS = ts[i]
		}
		v := vals[i]
		c.Sum += v
		if !math.IsNaN(v) {
			if math.IsNaN(c.Min) || v < c.Min {
				c.Min = v
			}
			if math.IsNaN(c.Max) || v > c.Max {
				c.Max = v
			}
		}
	}
	return c, nil
}

// DecodeChunkData decodes an encoded chunk payload, appending the
// samples to dst (which may be nil). The returned samples are
// bit-identical to what EncodeChunk was given.
func DecodeChunkData(data []byte, dst []Sample) ([]Sample, error) {
	if len(data) < 3+1+16 {
		return dst, fmt.Errorf("tsdb: chunk too short (%d bytes)", len(data))
	}
	if data[0] != chunkMagic {
		return dst, fmt.Errorf("tsdb: bad chunk magic 0x%02x", data[0])
	}
	if data[1] != chunkVersion {
		return dst, fmt.Errorf("tsdb: unsupported chunk version %d", data[1])
	}
	enc := int(data[2])
	if enc != encIntDelta && enc != encBitsDelta {
		return dst, fmt.Errorf("tsdb: unknown value encoding %d", enc)
	}
	p := data[3:]
	n64, sz := binary.Uvarint(p)
	if sz <= 0 || n64 == 0 || n64 > MaxChunkSamples {
		return dst, fmt.Errorf("tsdb: bad chunk count")
	}
	n := int(n64)
	p = p[sz:]
	if len(p) < 16 {
		return dst, fmt.Errorf("tsdb: truncated chunk header")
	}
	ts0 := int64(binary.BigEndian.Uint64(p))
	v0 := binary.BigEndian.Uint64(p[8:])
	p = p[16:]

	tsLen, sz := binary.Uvarint(p)
	if sz <= 0 || tsLen > uint64(len(p)-sz) {
		return dst, fmt.Errorf("tsdb: bad timestamp stream length")
	}
	p = p[sz:]
	tr := deltaReader{buf: p[:tsLen]}
	vr := deltaReader{buf: p[tsLen:]}

	if cap(dst)-len(dst) < n {
		grown := make([]Sample, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, Sample{TS: ts0, V: math.Float64frombits(v0)})
	prevTS, prevDelta := ts0, int64(0)
	switch enc {
	case encIntDelta:
		prev := int64(math.Float64frombits(v0))
		for i := 1; i < n; i++ {
			prevDelta += tr.next()
			prevTS += prevDelta
			prev += vr.next()
			dst = append(dst, Sample{TS: prevTS, V: float64(prev)})
		}
	default:
		prev := v0
		for i := 1; i < n; i++ {
			prevDelta += tr.next()
			prevTS += prevDelta
			prev += uint64(vr.next())
			dst = append(dst, Sample{TS: prevTS, V: math.Float64frombits(prev)})
		}
	}
	if tr.err != nil {
		return dst, tr.err
	}
	if vr.err != nil {
		return dst, vr.err
	}
	return dst, nil
}

// Decode appends the chunk's samples to dst.
func (c *Chunk) Decode(dst []Sample) ([]Sample, error) {
	return DecodeChunkData(c.data, dst)
}
