// Package geom provides the basic 3D geometry types shared by every layer
// of HAWC-CC: points, point clouds, bounding boxes, and simple statistics
// over clouds. The coordinate convention follows the paper's deployment:
// the LiDAR sensor sits at the origin on top of a 3 m pole, x points down
// the walkway (positive away from the pole), y spans the walkway width, and
// z is vertical with the ground near z = -3 m.
package geom

import (
	"fmt"
	"math"
)

// Point3 is a single LiDAR return in sensor-frame coordinates (meters).
type Point3 struct {
	X, Y, Z float64
}

// P is a concise Point3 constructor for call sites outside this package,
// where unkeyed composite literals are discouraged.
func P(x, y, z float64) Point3 { return Point3{X: x, Y: y, Z: z} }

// Add returns p + q componentwise.
func (p Point3) Add(q Point3) Point3 { return Point3{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Sub returns p - q componentwise.
func (p Point3) Sub(q Point3) Point3 { return Point3{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns p scaled by s.
func (p Point3) Scale(s float64) Point3 { return Point3{p.X * s, p.Y * s, p.Z * s} }

// Dot returns the dot product of p and q.
func (p Point3) Dot(q Point3) float64 { return p.X*q.X + p.Y*q.Y + p.Z*q.Z }

// Norm returns the Euclidean length of p.
func (p Point3) Norm() float64 { return math.Sqrt(p.Dot(p)) }

// Dist returns the Euclidean distance between p and q.
func (p Point3) Dist(q Point3) float64 { return p.Sub(q).Norm() }

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths (k-d tree searches, DBSCAN region queries).
func (p Point3) Dist2(q Point3) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return dx*dx + dy*dy + dz*dz
}

// Coord returns the axis-th coordinate (0 = x, 1 = y, 2 = z).
func (p Point3) Coord(axis int) float64 {
	switch axis {
	case 0:
		return p.X
	case 1:
		return p.Y
	case 2:
		return p.Z
	default:
		panic(fmt.Sprintf("geom: invalid axis %d", axis))
	}
}

// Cloud is an unordered set of LiDAR returns. The zero value is an empty
// cloud ready to use.
type Cloud []Point3

// Clone returns a deep copy of the cloud.
func (c Cloud) Clone() Cloud {
	out := make(Cloud, len(c))
	copy(out, c)
	return out
}

// Centroid returns the arithmetic mean of the cloud's points. It returns
// the zero point for an empty cloud.
func (c Cloud) Centroid() Point3 {
	if len(c) == 0 {
		return Point3{}
	}
	var sum Point3
	for _, p := range c {
		sum = sum.Add(p)
	}
	return sum.Scale(1 / float64(len(c)))
}

// Translate shifts every point in the cloud by d, in place, and returns c.
func (c Cloud) Translate(d Point3) Cloud {
	for i := range c {
		c[i] = c[i].Add(d)
	}
	return c
}

// Bounds returns the axis-aligned bounding box of the cloud. Empty clouds
// yield an empty box (Min > Max on every axis).
func (c Cloud) Bounds() Box {
	if len(c) == 0 {
		return EmptyBox()
	}
	b := Box{Min: c[0], Max: c[0]}
	for _, p := range c[1:] {
		b.Min.X = math.Min(b.Min.X, p.X)
		b.Min.Y = math.Min(b.Min.Y, p.Y)
		b.Min.Z = math.Min(b.Min.Z, p.Z)
		b.Max.X = math.Max(b.Max.X, p.X)
		b.Max.Y = math.Max(b.Max.Y, p.Y)
		b.Max.Z = math.Max(b.Max.Z, p.Z)
	}
	return b
}

// Filter returns the points for which keep returns true. The result shares
// no storage with c.
func (c Cloud) Filter(keep func(Point3) bool) Cloud {
	out := make(Cloud, 0, len(c))
	for _, p := range c {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}

// MinZ returns the smallest z coordinate, or +Inf for an empty cloud.
func (c Cloud) MinZ() float64 {
	minZ := math.Inf(1)
	for _, p := range c {
		minZ = math.Min(minZ, p.Z)
	}
	return minZ
}

// MaxZ returns the largest z coordinate, or -Inf for an empty cloud.
func (c Cloud) MaxZ() float64 {
	maxZ := math.Inf(-1)
	for _, p := range c {
		maxZ = math.Max(maxZ, p.Z)
	}
	return maxZ
}

// Box is an axis-aligned bounding box.
type Box struct {
	Min, Max Point3
}

// EmptyBox returns a box that contains no points; Extend-ing it with a
// point yields the degenerate box at that point.
func EmptyBox() Box {
	inf := math.Inf(1)
	return Box{
		Min: Point3{inf, inf, inf},
		Max: Point3{-inf, -inf, -inf},
	}
}

// IsEmpty reports whether the box contains no points.
func (b Box) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Extend grows the box to include p and returns the result.
func (b Box) Extend(p Point3) Box {
	b.Min.X = math.Min(b.Min.X, p.X)
	b.Min.Y = math.Min(b.Min.Y, p.Y)
	b.Min.Z = math.Min(b.Min.Z, p.Z)
	b.Max.X = math.Max(b.Max.X, p.X)
	b.Max.Y = math.Max(b.Max.Y, p.Y)
	b.Max.Z = math.Max(b.Max.Z, p.Z)
	return b
}

// Union returns the smallest box containing both b and o.
func (b Box) Union(o Box) Box {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return b.Extend(o.Min).Extend(o.Max)
}

// Contains reports whether p lies inside the box (inclusive).
func (b Box) Contains(p Point3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Size returns the box extents on each axis. Empty boxes report zero size.
func (b Box) Size() Point3 {
	if b.IsEmpty() {
		return Point3{}
	}
	return b.Max.Sub(b.Min)
}

// Center returns the geometric center of the box.
func (b Box) Center() Point3 {
	return b.Min.Add(b.Max).Scale(0.5)
}

// Dist2ToPoint returns the squared distance from p to the nearest point of
// the box (zero when p is inside). Used by k-d tree pruning.
func (b Box) Dist2ToPoint(p Point3) float64 {
	var d2 float64
	for axis := 0; axis < 3; axis++ {
		v := p.Coord(axis)
		lo, hi := b.Min.Coord(axis), b.Max.Coord(axis)
		if v < lo {
			d := lo - v
			d2 += d * d
		} else if v > hi {
			d := v - hi
			d2 += d * d
		}
	}
	return d2
}
