package geom

import (
	"math"
	"sort"
)

// AxisValues extracts the axis-th coordinate of every point in the cloud.
func AxisValues(c Cloud, axis int) []float64 {
	out := make([]float64, len(c))
	for i, p := range c {
		out[i] = p.Coord(axis)
	}
	return out
}

// Histogram is a fixed-width binning of scalar values, used to reproduce
// the paper's Figure 6 coordinate histograms.
type Histogram struct {
	Min, Max float64 // value range covered by the bins
	Counts   []int   // Counts[i] covers [Min + i*w, Min + (i+1)*w)
}

// BinWidth returns the width of each bin.
func (h Histogram) BinWidth() float64 {
	if len(h.Counts) == 0 {
		return 0
	}
	return (h.Max - h.Min) / float64(len(h.Counts))
}

// Total returns the total number of binned values.
func (h Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// NewHistogram bins values into bins equal-width buckets over [min, max].
// Values outside the range are clamped into the first/last bin so the
// histogram always accounts for every value.
func NewHistogram(values []float64, min, max float64, bins int) Histogram {
	h := Histogram{Min: min, Max: max, Counts: make([]int, bins)}
	if bins == 0 || max <= min {
		return h
	}
	w := (max - min) / float64(bins)
	for _, v := range values {
		i := int((v - min) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h
}

// Mean returns the arithmetic mean of values (0 for an empty slice).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// StdDev returns the population standard deviation of values.
func StdDev(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := Mean(values)
	var s float64
	for _, v := range values {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(values)))
}

// Percentile returns the p-th percentile (0..100) of values using linear
// interpolation between order statistics. It copies and sorts internally.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
