// Package kernels provides the vectorized float32 primitives behind the
// structure-of-arrays geometry path: bulk squared distances from a query
// point to a contiguous x/y/z slice triple, masked ε-radius compare
// counting, and min/max bounds reduction. These are the inner loops of
// internal/spatial's voxel-grid radius and kNN scans, which DBSCAN and
// the adaptive-ε curve issue thousands of times per frame.
//
// Like internal/nn/kernels, the package keeps a pure-Go reference
// implementation of every kernel and dispatches to AVX assembly
// micro-kernels only when CPUID (and the OS's YMM state handling) says
// they are usable. The assembly follows the same bit-identical
// accumulation contract: per-lane operation sequence equal to the
// reference (VSUBPS/VMULPS/VADDPS with a fixed association, never FMA),
// so Dist2 and CountDist2LE produce bit-identical results on every path
// and the dispatch changes speed, not values. MinMax is bit-identical on
// finite inputs up to the sign of zero (VMINPS/VMAXPS and the scalar
// reference may disagree on ±0, which compare equal); it is undefined on
// NaN inputs, which the callers exclude.
//
// All results are computed in float32. Callers that need exact float64
// semantics (the voxel grid's filter-and-refine queries) bound the
// float32 error analytically and re-check only candidates inside the
// uncertainty band; see internal/spatial.
package kernels

// vectorized gates the assembly fast paths. It is set once at init from
// CPUID and may be overridden by SetVectorized for baseline benchmarks
// and equivalence tests; it is not synchronized, so toggling is only
// safe when no kernel calls are in flight (tests and benchmarks toggle
// from a single goroutine before spawning work).
var vectorized = useAVX

// Vectorized reports whether the assembly fast paths are in use.
func Vectorized() bool { return vectorized }

// SetVectorized forces the assembly fast paths on or off and returns the
// previous setting. Enabling on hardware without AVX support downgrades
// to the reference implementations rather than faulting.
func SetVectorized(on bool) (prev bool) {
	prev = vectorized
	vectorized = on && useAVX
	return prev
}

// Dist2 writes into dst[i] the squared distance from the query point
// (qx, qy, qz) to (xs[i], ys[i], zs[i]) for every i, computed in float32
// with the fixed association ((dx²+dy²)+dz²). dst, xs, ys, and zs must
// share a length.
func Dist2(dst, xs, ys, zs []float32, qx, qy, qz float32) {
	n := len(dst)
	if len(xs) != n || len(ys) != n || len(zs) != n {
		panic("kernels: Dist2 slice length mismatch")
	}
	if n == 0 {
		return
	}
	i := 0
	if vectorized && n >= 8 {
		m := n &^ 7
		dist2AVX(&dst[0], &xs[0], &ys[0], &zs[0], m, qx, qy, qz)
		i = m
	}
	dist2Ref(dst[i:], xs[i:], ys[i:], zs[i:], qx, qy, qz)
}

// dist2Ref is the scalar reference: same per-element operation sequence
// as the assembly, so results are bit-identical.
func dist2Ref(dst, xs, ys, zs []float32, qx, qy, qz float32) {
	for i := range dst {
		dx := xs[i] - qx
		dy := ys[i] - qy
		dz := zs[i] - qz
		dst[i] = dx*dx + dy*dy + dz*dz
	}
}

// CountDist2LE returns the number of points whose float32 squared
// distance from (qx, qy, qz) — computed exactly as Dist2 computes it —
// is ≤ t. NaN distances (from non-finite inputs) never count, matching
// Go's <= on both paths.
func CountDist2LE(xs, ys, zs []float32, qx, qy, qz, t float32) int {
	n := len(xs)
	if len(ys) != n || len(zs) != n {
		panic("kernels: CountDist2LE slice length mismatch")
	}
	if n == 0 {
		return 0
	}
	count := 0
	i := 0
	if vectorized && n >= 8 {
		m := n &^ 7
		count = int(countLEAVX(&xs[0], &ys[0], &zs[0], m, qx, qy, qz, t))
		i = m
	}
	return count + countLERef(xs[i:], ys[i:], zs[i:], qx, qy, qz, t)
}

// countLERef is the scalar reference for CountDist2LE.
func countLERef(xs, ys, zs []float32, qx, qy, qz, t float32) int {
	count := 0
	for i := range xs {
		dx := xs[i] - qx
		dy := ys[i] - qy
		dz := zs[i] - qz
		if dx*dx+dy*dy+dz*dz <= t {
			count++
		}
	}
	return count
}

// MaskDist2LE writes per-8-lane bitmasks of the compares d2 ≤ tHi (into
// hiM) and d2 ≤ tLo (into loM), where d2 is the float32 squared distance
// from (qx, qy, qz) computed exactly as Dist2 computes it. Bit j of byte
// b answers for element 8b+j; bits past len(xs) are zero. hiM and loM
// must hold at least (len(xs)+7)/8 bytes. NaN distances set no bits,
// matching Go's <= on both paths. One fused pass serves the grid's
// filter-and-refine scans: hiM bits are the candidates, hiM&^loM the
// narrow band needing an exact re-check.
func MaskDist2LE(hiM, loM []uint8, xs, ys, zs []float32, qx, qy, qz, tHi, tLo float32) {
	n := len(xs)
	if len(ys) != n || len(zs) != n {
		panic("kernels: MaskDist2LE slice length mismatch")
	}
	if len(hiM) < (n+7)/8 || len(loM) < (n+7)/8 {
		panic("kernels: MaskDist2LE mask buffer too short")
	}
	if n == 0 {
		return
	}
	i := 0
	if vectorized && n >= 8 {
		m := n &^ 7
		maskLEAVX(&hiM[0], &loM[0], &xs[0], &ys[0], &zs[0], m, qx, qy, qz, tHi, tLo)
		i = m
	}
	maskLERef(hiM[i/8:], loM[i/8:], xs[i:], ys[i:], zs[i:], qx, qy, qz, tHi, tLo)
}

// maskLERef is the scalar reference for MaskDist2LE.
func maskLERef(hiM, loM []uint8, xs, ys, zs []float32, qx, qy, qz, tHi, tLo float32) {
	for b := 0; b*8 < len(xs); b++ {
		var h, l uint8
		for j := 0; j < 8 && b*8+j < len(xs); j++ {
			i := b*8 + j
			dx := xs[i] - qx
			dy := ys[i] - qy
			dz := zs[i] - qz
			d2 := dx*dx + dy*dy + dz*dz
			if d2 <= tHi {
				h |= 1 << uint(j)
			}
			if d2 <= tLo {
				l |= 1 << uint(j)
			}
		}
		hiM[b], loM[b] = h, l
	}
}

// MinMax returns the minimum and maximum of vals, which must be
// non-empty and free of NaNs. On inputs mixing -0 and +0 the sign of the
// returned zeros is unspecified (the values still compare equal).
func MinMax(vals []float32) (min, max float32) {
	if len(vals) == 0 {
		panic("kernels: MinMax of empty slice")
	}
	if vectorized && len(vals) >= 16 {
		m := len(vals) &^ 7
		min, max = minMaxAVX(&vals[0], m)
		for _, v := range vals[m:] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return min, max
	}
	return minMaxRef(vals)
}

// minMaxRef is the scalar reference for MinMax.
func minMaxRef(vals []float32) (min, max float32) {
	min, max = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}
