//go:build !amd64

package kernels

// Non-amd64 builds run the pure-Go reference kernels only. The
// constants compile the assembly dispatch away entirely.
const (
	useAVX  = false
	useAVX2 = false
)

func dist2AVX(dst, xs, ys, zs *float32, n int, qx, qy, qz float32) {
	panic("kernels: no assembly on this architecture")
}

func countLEAVX(xs, ys, zs *float32, n int, qx, qy, qz, t float32) int64 {
	panic("kernels: no assembly on this architecture")
}

func maskLEAVX(hiM, loM *uint8, xs, ys, zs *float32, n int, qx, qy, qz, tHi, tLo float32) {
	panic("kernels: no assembly on this architecture")
}

func minMaxAVX(vals *float32, n int) (min, max float32) {
	panic("kernels: no assembly on this architecture")
}
