package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// randCoords fills three coordinate slices with values drawn from the
// given generator, mixing magnitudes so tails, denormals, and ordinary
// campus-scale coordinates all appear.
func randCoords(rng *rand.Rand, n int) (xs, ys, zs []float32) {
	xs = make([]float32, n)
	ys = make([]float32, n)
	zs = make([]float32, n)
	for i := 0; i < n; i++ {
		xs[i] = randVal(rng)
		ys[i] = randVal(rng)
		zs[i] = randVal(rng)
	}
	return xs, ys, zs
}

func randVal(rng *rand.Rand) float32 {
	switch rng.Intn(10) {
	case 0:
		// Denormal-range magnitudes.
		return float32(rng.NormFloat64()) * 1e-40
	case 1:
		return 0
	case 2:
		return float32(math.Copysign(0, -1)) // -0
	default:
		return float32(rng.NormFloat64() * 40) // campus-scale metres
	}
}

func TestDist2MatchesReference(t *testing.T) {
	if !Vectorized() {
		t.Skip("no vector unit; dispatch already uses the reference")
	}
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 100; n++ {
		xs, ys, zs := randCoords(rng, n)
		qx, qy, qz := randVal(rng), randVal(rng), randVal(rng)

		want := make([]float32, n)
		dist2Ref(want, xs, ys, zs, qx, qy, qz)

		got := make([]float32, n)
		Dist2(got, xs, ys, zs, qx, qy, qz)
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("n=%d i=%d: Dist2 = %x, reference = %x",
					n, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	}
}

func TestCountDist2LEMatchesReference(t *testing.T) {
	if !Vectorized() {
		t.Skip("no vector unit; dispatch already uses the reference")
	}
	rng := rand.New(rand.NewSource(11))
	for n := 0; n <= 100; n++ {
		xs, ys, zs := randCoords(rng, n)
		qx, qy, qz := randVal(rng), randVal(rng), randVal(rng)

		// Exercise ε-boundary thresholds: pick t equal to an actual
		// computed distance so the ≤ comparison sits exactly on a value,
		// plus a generic threshold.
		d := make([]float32, n)
		dist2Ref(d, xs, ys, zs, qx, qy, qz)
		thresholds := []float32{4, 0, float32(math.Inf(1))}
		if n > 0 {
			thresholds = append(thresholds, d[rng.Intn(n)])
		}
		for _, th := range thresholds {
			want := countLERef(xs, ys, zs, qx, qy, qz, th)
			got := CountDist2LE(xs, ys, zs, qx, qy, qz, th)
			if got != want {
				t.Fatalf("n=%d t=%g: CountDist2LE = %d, reference = %d", n, th, got, want)
			}
		}
	}
}

func TestMaskDist2LEMatchesReference(t *testing.T) {
	if !Vectorized() {
		t.Skip("no vector unit; dispatch already uses the reference")
	}
	rng := rand.New(rand.NewSource(13))
	for n := 0; n <= 100; n++ {
		xs, ys, zs := randCoords(rng, n)
		qx, qy, qz := randVal(rng), randVal(rng), randVal(rng)

		// Boundary thresholds as in the count test: an actual computed
		// distance so ≤ sits exactly on a value, plus generic ones.
		d := make([]float32, n)
		dist2Ref(d, xs, ys, zs, qx, qy, qz)
		thresholds := []float32{4, 0, float32(math.Inf(1))}
		if n > 0 {
			thresholds = append(thresholds, d[rng.Intn(n)])
		}
		nb := (n + 7) / 8
		for _, tHi := range thresholds {
			for _, tLo := range thresholds {
				wantHi, wantLo := make([]uint8, nb), make([]uint8, nb)
				maskLERef(wantHi, wantLo, xs, ys, zs, qx, qy, qz, tHi, tLo)
				gotHi, gotLo := make([]uint8, nb), make([]uint8, nb)
				MaskDist2LE(gotHi, gotLo, xs, ys, zs, qx, qy, qz, tHi, tLo)
				for b := 0; b < nb; b++ {
					if gotHi[b] != wantHi[b] || gotLo[b] != wantLo[b] {
						t.Fatalf("n=%d tHi=%g tLo=%g b=%d: MaskDist2LE = %02x/%02x, reference = %02x/%02x",
							n, tHi, tLo, b, gotHi[b], gotLo[b], wantHi[b], wantLo[b])
					}
				}
			}
		}
	}
}

func TestMaskDist2LENaNSetsNoBits(t *testing.T) {
	nan := float32(math.NaN())
	xs := []float32{nan, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	ys := make([]float32, len(xs))
	zs := make([]float32, len(xs))
	hi := make([]uint8, 2)
	lo := make([]uint8, 2)
	inf := float32(math.Inf(1))
	MaskDist2LE(hi, lo, xs, ys, zs, 0, 0, 0, inf, inf)
	if hi[0] != 0xfe || hi[1] != 0x03 || lo[0] != 0xfe || lo[1] != 0x03 {
		t.Fatalf("MaskDist2LE with NaN input = %02x %02x / %02x %02x, want fe 03 twice",
			hi[0], hi[1], lo[0], lo[1])
	}
}

func TestCountDist2LENaNNeverCounts(t *testing.T) {
	nan := float32(math.NaN())
	xs := []float32{nan, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	ys := make([]float32, len(xs))
	zs := make([]float32, len(xs))
	got := CountDist2LE(xs, ys, zs, 0, 0, 0, float32(math.Inf(1)))
	if got != len(xs)-1 {
		t.Fatalf("CountDist2LE with NaN input = %d, want %d", got, len(xs)-1)
	}
}

func TestMinMaxMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for n := 1; n <= 100; n++ {
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = randVal(rng)
		}
		wantMin, wantMax := minMaxRef(vals)
		gotMin, gotMax := MinMax(vals)
		// ±0 signs are unspecified, so compare by value, not bits.
		if gotMin != wantMin || gotMax != wantMax {
			t.Fatalf("n=%d: MinMax = (%g, %g), reference = (%g, %g)",
				n, gotMin, gotMax, wantMin, wantMax)
		}
	}
}

func TestMinMaxSingleAndUniform(t *testing.T) {
	if min, max := MinMax([]float32{3.5}); min != 3.5 || max != 3.5 {
		t.Fatalf("MinMax single = (%g, %g)", min, max)
	}
	uniform := make([]float32, 37)
	for i := range uniform {
		uniform[i] = -2.25
	}
	if min, max := MinMax(uniform); min != -2.25 || max != -2.25 {
		t.Fatalf("MinMax uniform = (%g, %g)", min, max)
	}
}

func TestSetVectorizedToggle(t *testing.T) {
	orig := Vectorized()
	defer SetVectorized(orig)

	if prev := SetVectorized(false); prev != orig {
		t.Fatalf("SetVectorized returned prev=%v, want %v", prev, orig)
	}
	if Vectorized() {
		t.Fatal("Vectorized() true after SetVectorized(false)")
	}
	SetVectorized(true)
	// On AVX hardware this re-enables; elsewhere it must stay off
	// rather than faulting.
	if Vectorized() != useAVX {
		t.Fatalf("Vectorized() = %v after SetVectorized(true), want %v", Vectorized(), useAVX)
	}

	// The toggle must not change results.
	rng := rand.New(rand.NewSource(17))
	xs, ys, zs := randCoords(rng, 43)
	a := make([]float32, len(xs))
	b := make([]float32, len(xs))
	SetVectorized(true)
	Dist2(a, xs, ys, zs, 1, -2, 0.5)
	ca := CountDist2LE(xs, ys, zs, 1, -2, 0.5, 9)
	SetVectorized(false)
	Dist2(b, xs, ys, zs, 1, -2, 0.5)
	cb := CountDist2LE(xs, ys, zs, 1, -2, 0.5, 9)
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("i=%d: vectorized %x != scalar %x", i, math.Float32bits(a[i]), math.Float32bits(b[i]))
		}
	}
	if ca != cb {
		t.Fatalf("CountDist2LE vectorized %d != scalar %d", ca, cb)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Dist2":        func() { Dist2(make([]float32, 3), make([]float32, 2), make([]float32, 3), make([]float32, 3), 0, 0, 0) },
		"CountDist2LE": func() { CountDist2LE(make([]float32, 3), make([]float32, 2), make([]float32, 3), 0, 0, 0, 1) },
		"MinMaxEmpty":  func() { MinMax(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkDist2(b *testing.B) {
	benchSizes := []int{64, 1024, 16384}
	for _, n := range benchSizes {
		rng := rand.New(rand.NewSource(1))
		xs, ys, zs := randCoords(rng, n)
		dst := make([]float32, n)
		for _, vec := range []bool{false, true} {
			name := "scalar"
			if vec {
				name = "vector"
			}
			b.Run(benchName(name, n), func(b *testing.B) {
				prev := SetVectorized(vec)
				defer SetVectorized(prev)
				b.SetBytes(int64(n * 12))
				for i := 0; i < b.N; i++ {
					Dist2(dst, xs, ys, zs, 1, 2, 3)
				}
			})
		}
	}
}

func BenchmarkCountDist2LE(b *testing.B) {
	n := 16384
	rng := rand.New(rand.NewSource(2))
	xs, ys, zs := randCoords(rng, n)
	for _, vec := range []bool{false, true} {
		name := "scalar"
		if vec {
			name = "vector"
		}
		b.Run(benchName(name, n), func(b *testing.B) {
			prev := SetVectorized(vec)
			defer SetVectorized(prev)
			b.SetBytes(int64(n * 12))
			for i := 0; i < b.N; i++ {
				CountDist2LE(xs, ys, zs, 1, 2, 3, 25)
			}
		})
	}
}

func benchName(kind string, n int) string {
	switch n {
	case 64:
		return kind + "/64"
	case 1024:
		return kind + "/1k"
	case 16384:
		return kind + "/16k"
	}
	return kind
}
