//go:build amd64

package kernels

// SIMD fast paths for the geometry kernels, written in Go assembly so
// the toolchain needs no cgo or external dependencies. Each kernel
// processes 8 float32 lanes per step on YMM registers with the exact
// per-lane operation sequence of its scalar reference (VSUBPS, then
// VMULPS and VADDPS in the fixed ((dx²+dy²)+dz²) association — never
// FMA), so the assembly and pure-Go paths produce bit-identical values
// and dispatch never changes results, only speed.
//
// Detection follows internal/nn/kernels: CPUID leaf 1 for AVX plus
// OSXSAVE, then XGETBV for OS-saved YMM state, so a positive answer
// means the instructions are actually usable. (Leaf 7's AVX2 bit is
// probed too for symmetry, but these kernels only need AVX; POPCNT is
// implied by any AVX-era core.)
var useAVX, useAVX2 = cpuFeatures()

// cpuFeatures reports AVX and AVX2 availability, implemented in
// asm_amd64.s via CPUID/XGETBV.
func cpuFeatures() (avx, avx2 bool)

// dist2AVX computes dst[i] = ((xs[i]-qx)²+(ys[i]-qy)²)+(zs[i]-qz)² for
// i in [0, n); n must be a positive multiple of 8 and all slices must
// have at least n elements.
//
//go:noescape
func dist2AVX(dst, xs, ys, zs *float32, n int, qx, qy, qz float32)

// countLEAVX returns how many of the n squared distances — computed
// exactly as dist2AVX computes them — are ≤ t, via a masked VCMPPS(LE)
// compare and per-block popcount. n must be a positive multiple of 8.
//
//go:noescape
func countLEAVX(xs, ys, zs *float32, n int, qx, qy, qz, t float32) int64

// maskLEAVX writes, for each 8-lane block of the n squared distances —
// computed exactly as dist2AVX computes them — one byte into hiM with
// bit j set iff distance 8b+j ≤ tHi, and likewise into loM against tLo.
// n must be a positive multiple of 8.
//
//go:noescape
func maskLEAVX(hiM, loM *uint8, xs, ys, zs *float32, n int, qx, qy, qz, tHi, tLo float32)

// minMaxAVX reduces vals[0:n] to its minimum and maximum via
// VMINPS/VMAXPS; n must be a positive multiple of 8. Finite inputs
// only; ±0 signs in the result are unspecified.
//
//go:noescape
func minMaxAVX(vals *float32, n int) (min, max float32)
