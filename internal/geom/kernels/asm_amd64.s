// SIMD geometry kernels. See asm_amd64.go for the contract: 8 float32
// lanes per step, per-lane operation sequence identical to the scalar
// references (VSUBPS then VMULPS/VADDPS in the fixed ((dx²+dy²)+dz²)
// association, never FMA), so results are bit-identical to the pure-Go
// path and dispatch never changes values.

#include "textflag.h"

// func cpuFeatures() (avx, avx2 bool)
TEXT ·cpuFeatures(SB), NOSPLIT, $0-2
	MOVB $0, avx+0(FP)
	MOVB $0, avx2+1(FP)

	// Highest supported CPUID leaf must cover leaf 7.
	XORL AX, AX
	CPUID
	CMPL AX, $7
	JL   done

	// Leaf 1: ECX bit 27 = OSXSAVE, bit 28 = AVX.
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28), R8
	CMPL R8, $(1<<27 | 1<<28)
	JNE  done

	// XCR0 bits 1 and 2: OS saves XMM and YMM state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  done
	MOVB $1, avx+0(FP)

	// Leaf 7 subleaf 0: EBX bit 5 = AVX2.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   done
	MOVB $1, avx2+1(FP)

done:
	RET

// func dist2AVX(dst, xs, ys, zs *float32, n int, qx, qy, qz float32)
//
// Per 8-lane step: dx = x - qx (VSUBPS), square (VMULPS), accumulate
// ((dx²+dy²)+dz²) with two VADDPS — the scalar reference's association.
TEXT ·dist2AVX(SB), NOSPLIT, $0-52
	MOVQ dst+0(FP), DI
	MOVQ xs+8(FP), SI
	MOVQ ys+16(FP), R8
	MOVQ zs+24(FP), R9
	MOVQ n+32(FP), CX
	VBROADCASTSS qx+40(FP), Y1
	VBROADCASTSS qy+44(FP), Y2
	VBROADCASTSS qz+48(FP), Y3

dloop:
	VMOVUPS (SI), Y4
	VSUBPS  Y1, Y4, Y4
	VMULPS  Y4, Y4, Y4
	VMOVUPS (R8), Y5
	VSUBPS  Y2, Y5, Y5
	VMULPS  Y5, Y5, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS (R9), Y5
	VSUBPS  Y3, Y5, Y5
	VMULPS  Y5, Y5, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS Y4, (DI)
	ADDQ    $32, SI
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, DI
	SUBQ    $8, CX
	JNZ     dloop

	VZEROUPPER
	RET

// func countLEAVX(xs, ys, zs *float32, n int, qx, qy, qz, t float32) int64
//
// Same distance sequence as dist2AVX, then a masked compare: VCMPPS
// predicate 2 (LE, ordered — NaN compares false, matching Go's <=),
// VMOVMSKPS to a mask byte, POPCNT accumulated into AX.
TEXT ·countLEAVX(SB), NOSPLIT, $0-56
	MOVQ xs+0(FP), SI
	MOVQ ys+8(FP), R8
	MOVQ zs+16(FP), R9
	MOVQ n+24(FP), CX
	VBROADCASTSS qx+32(FP), Y1
	VBROADCASTSS qy+36(FP), Y2
	VBROADCASTSS qz+40(FP), Y3
	VBROADCASTSS t+44(FP), Y0
	XORQ AX, AX

cloop:
	VMOVUPS (SI), Y4
	VSUBPS  Y1, Y4, Y4
	VMULPS  Y4, Y4, Y4
	VMOVUPS (R8), Y5
	VSUBPS  Y2, Y5, Y5
	VMULPS  Y5, Y5, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS (R9), Y5
	VSUBPS  Y3, Y5, Y5
	VMULPS  Y5, Y5, Y5
	VADDPS  Y5, Y4, Y4
	VCMPPS  $2, Y0, Y4, Y5
	VMOVMSKPS Y5, DX
	POPCNTL DX, DX
	ADDQ    DX, AX
	ADDQ    $32, SI
	ADDQ    $32, R8
	ADDQ    $32, R9
	SUBQ    $8, CX
	JNZ     cloop

	MOVQ AX, ret+48(FP)
	VZEROUPPER
	RET

// func maskLEAVX(hiM, loM *uint8, xs, ys, zs *float32, n int, qx, qy, qz, tHi, tLo float32)
//
// Same distance sequence as dist2AVX, then two masked compares per
// block: VCMPPS predicate 2 (LE, ordered — NaN compares false, matching
// Go's <=) against tHi and tLo, each VMOVMSKPS'd to one mask byte.
TEXT ·maskLEAVX(SB), NOSPLIT, $0-68
	MOVQ hiM+0(FP), DI
	MOVQ loM+8(FP), BX
	MOVQ xs+16(FP), SI
	MOVQ ys+24(FP), R8
	MOVQ zs+32(FP), R9
	MOVQ n+40(FP), CX
	VBROADCASTSS qx+48(FP), Y1
	VBROADCASTSS qy+52(FP), Y2
	VBROADCASTSS qz+56(FP), Y3
	VBROADCASTSS tHi+60(FP), Y0
	VBROADCASTSS tLo+64(FP), Y6

mkloop:
	VMOVUPS (SI), Y4
	VSUBPS  Y1, Y4, Y4
	VMULPS  Y4, Y4, Y4
	VMOVUPS (R8), Y5
	VSUBPS  Y2, Y5, Y5
	VMULPS  Y5, Y5, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS (R9), Y5
	VSUBPS  Y3, Y5, Y5
	VMULPS  Y5, Y5, Y5
	VADDPS  Y5, Y4, Y4
	VCMPPS  $2, Y0, Y4, Y5
	VMOVMSKPS Y5, DX
	MOVB    DL, (DI)
	VCMPPS  $2, Y6, Y4, Y5
	VMOVMSKPS Y5, DX
	MOVB    DL, (BX)
	ADDQ    $32, SI
	ADDQ    $32, R8
	ADDQ    $32, R9
	INCQ    DI
	INCQ    BX
	SUBQ    $8, CX
	JNZ     mkloop

	VZEROUPPER
	RET

// func minMaxAVX(vals *float32, n int) (min, max float32)
//
// Eight-lane VMINPS/VMAXPS accumulators seeded with the first block,
// then a horizontal reduction: fold the high 128-bit half in, then
// shuffle-and-min twice down to lane 0.
TEXT ·minMaxAVX(SB), NOSPLIT, $0-24
	MOVQ vals+0(FP), SI
	MOVQ n+8(FP), CX
	VMOVUPS (SI), Y0          // min accumulator
	VMOVUPS (SI), Y1          // max accumulator
	ADDQ    $32, SI
	SUBQ    $8, CX
	JZ      reduce

mloop:
	VMOVUPS (SI), Y2
	VMINPS  Y2, Y0, Y0
	VMAXPS  Y2, Y1, Y1
	ADDQ    $32, SI
	SUBQ    $8, CX
	JNZ     mloop

reduce:
	VEXTRACTF128 $1, Y0, X2
	VMINPS  X2, X0, X0
	VEXTRACTF128 $1, Y1, X3
	VMAXPS  X3, X1, X1
	VSHUFPS $0xee, X0, X0, X2 // lanes [2,3,2,3]
	VMINPS  X2, X0, X0
	VSHUFPS $0xee, X1, X1, X3
	VMAXPS  X3, X1, X1
	VSHUFPS $0x55, X0, X0, X2 // lane [1,...]
	VMINPS  X2, X0, X0
	VSHUFPS $0x55, X1, X1, X3
	VMAXPS  X3, X1, X1
	VMOVSS  X0, min+16(FP)
	VMOVSS  X1, max+20(FP)
	VZEROUPPER
	RET
