package geom

import (
	"math"

	"hawccc/internal/geom/kernels"
)

// CloudSoA is a point cloud in structure-of-arrays layout: three separate
// contiguous float32 coordinate slices. Compared to Cloud's array of
// float64 structs it halves memory traffic and lets the voxel-grid
// distance loops in internal/spatial run 8-wide through
// internal/geom/kernels.
//
// float32 has ~7 decimal digits of precision — at campus scale (|coord|
// under a few hundred metres) that is sub-10µm resolution, far below
// LiDAR noise. Exactness at ε boundaries is still preserved end to end:
// the spatial grid uses the float32 lanes only as a prefilter and
// re-checks candidates near a decision boundary in float64, so query and
// cluster results match the array-of-structs path bit for bit. See
// DESIGN.md.
//
// The zero value is an empty cloud ready to use. Like Cloud, a CloudSoA
// is append-grown and Reset for reuse, so pooled instances reach a
// steady state with zero per-frame allocations.
type CloudSoA struct {
	X, Y, Z []float32
}

// Len returns the number of points.
func (s *CloudSoA) Len() int { return len(s.X) }

// Reset empties the cloud, retaining capacity for reuse.
func (s *CloudSoA) Reset() {
	s.X = s.X[:0]
	s.Y = s.Y[:0]
	s.Z = s.Z[:0]
}

// Grow ensures capacity for at least n additional points.
func (s *CloudSoA) Grow(n int) {
	if need := len(s.X) + n; need > cap(s.X) {
		s.X = append(make([]float32, 0, need), s.X...)
		s.Y = append(make([]float32, 0, need), s.Y...)
		s.Z = append(make([]float32, 0, need), s.Z...)
	}
}

// At returns point i widened to float64. The widening is exact, so
// At-based consumers see precisely the stored float32 coordinates.
func (s *CloudSoA) At(i int) Point3 {
	return Point3{float64(s.X[i]), float64(s.Y[i]), float64(s.Z[i])}
}

// Append adds p, rounding each coordinate to float32.
func (s *CloudSoA) Append(p Point3) {
	s.X = append(s.X, float32(p.X))
	s.Y = append(s.Y, float32(p.Y))
	s.Z = append(s.Z, float32(p.Z))
}

// AppendXYZ adds a point given as float32 coordinates.
func (s *CloudSoA) AppendXYZ(x, y, z float32) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.Z = append(s.Z, z)
}

// FromCloud replaces the contents with c (rounded to float32), reusing
// existing capacity.
func (s *CloudSoA) FromCloud(c Cloud) {
	s.Reset()
	s.Grow(len(c))
	for _, p := range c {
		s.Append(p)
	}
}

// AppendToCloud appends every point, widened to float64, onto dst and
// returns the extended slice.
func (s *CloudSoA) AppendToCloud(dst Cloud) Cloud {
	if need := len(dst) + s.Len(); cap(dst) < need {
		grown := make(Cloud, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for i := range s.X {
		dst = append(dst, s.At(i))
	}
	return dst
}

// ToCloud returns the points as a freshly allocated array-of-structs
// cloud.
func (s *CloudSoA) ToCloud() Cloud {
	return s.AppendToCloud(make(Cloud, 0, s.Len()))
}

// Bounds returns the axis-aligned bounding box, computed with the
// vectorized min/max reduction. Coordinates must be finite (LiDAR
// returns always are); empty clouds yield an empty box.
func (s *CloudSoA) Bounds() Box {
	if s.Len() == 0 {
		return EmptyBox()
	}
	minX, maxX := kernels.MinMax(s.X)
	minY, maxY := kernels.MinMax(s.Y)
	minZ, maxZ := kernels.MinMax(s.Z)
	return Box{
		Min: Point3{float64(minX), float64(minY), float64(minZ)},
		Max: Point3{float64(maxX), float64(maxY), float64(maxZ)},
	}
}

// MaxAbs returns the largest coordinate magnitude in the cloud, or 0 for
// an empty cloud. The spatial grid uses it to bound float32 rounding
// error analytically.
func (s *CloudSoA) MaxAbs() float64 {
	b := s.Bounds()
	if b.IsEmpty() {
		return 0
	}
	m := math.Abs(b.Min.X)
	for _, v := range []float64{b.Max.X, b.Min.Y, b.Max.Y, b.Min.Z, b.Max.Z} {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Centroid returns the arithmetic mean of the points, accumulated in
// float64. It returns the zero point for an empty cloud.
func (s *CloudSoA) Centroid() Point3 {
	n := s.Len()
	if n == 0 {
		return Point3{}
	}
	var sx, sy, sz float64
	for i := 0; i < n; i++ {
		sx += float64(s.X[i])
		sy += float64(s.Y[i])
		sz += float64(s.Z[i])
	}
	inv := 1 / float64(n)
	return Point3{sx * inv, sy * inv, sz * inv}
}

// AppendTranslated appends src shifted by d onto dst and returns the
// extended slice. It replaces the Clone-then-Translate-then-append
// pattern on scene assembly paths with a single pass and no temporary.
func AppendTranslated(dst, src Cloud, d Point3) Cloud {
	if need := len(dst) + len(src); cap(dst) < need {
		grown := make(Cloud, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for _, p := range src {
		dst = append(dst, p.Add(d))
	}
	return dst
}
