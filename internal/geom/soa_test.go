package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randCloud(rng *rand.Rand, n int) Cloud {
	c := make(Cloud, n)
	for i := range c {
		c[i] = Point3{
			X: rng.Float64()*60 - 30,
			Y: rng.Float64()*60 - 30,
			Z: rng.Float64() * 3,
		}
	}
	return c
}

// widen rounds a cloud through float32, the representable set CloudSoA
// stores.
func widen(c Cloud) Cloud {
	out := make(Cloud, len(c))
	for i, p := range c {
		out[i] = Point3{
			X: float64(float32(p.X)),
			Y: float64(float32(p.Y)),
			Z: float64(float32(p.Z)),
		}
	}
	return out
}

// TestSoARoundTrip: Cloud → SoA → Cloud equals the float32-widened
// cloud exactly, and a second round trip is the identity (float32
// values survive unchanged).
func TestSoARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{0, 1, 33, 500} {
		cloud := randCloud(rng, n)
		var soa CloudSoA
		soa.FromCloud(cloud)
		if soa.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, soa.Len())
		}
		want := widen(cloud)
		got := soa.ToCloud()
		if len(got) != n {
			t.Fatalf("n=%d: ToCloud len %d", n, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d point %d: %v != widened %v", n, i, got[i], want[i])
			}
			if p := soa.At(i); p != want[i] {
				t.Fatalf("n=%d At(%d): %v != %v", n, i, p, want[i])
			}
		}
		// Second trip: float32-representable values are a fixed point.
		var soa2 CloudSoA
		soa2.FromCloud(got)
		again := soa2.AppendToCloud(nil)
		for i := range again {
			if again[i] != got[i] {
				t.Fatalf("n=%d point %d: second round trip moved %v to %v", n, i, got[i], again[i])
			}
		}
	}
}

// TestSoAEdgeValues pins the conversions on signed zeros, denormals,
// and infinities — the inputs a sloppy widening would normalize away.
func TestSoAEdgeValues(t *testing.T) {
	vals := []float32{0, float32(math.Copysign(0, -1)), 1e-40, -1e-40,
		math.MaxFloat32, float32(math.Inf(1)), float32(math.Inf(-1)), 1e-45}
	var soa CloudSoA
	for _, v := range vals {
		soa.AppendXYZ(v, -v, v)
	}
	for i, v := range vals {
		p := soa.At(i)
		if math.Float64bits(p.X) != math.Float64bits(float64(v)) ||
			math.Float64bits(p.Y) != math.Float64bits(float64(-v)) {
			t.Fatalf("value %d (%g): At = %v", i, v, p)
		}
	}
}

func TestSoAAppendGrowReset(t *testing.T) {
	var soa CloudSoA
	soa.Grow(100)
	if soa.Len() != 0 || cap(soa.X) < 100 {
		t.Fatalf("Grow(100): len %d cap %d", soa.Len(), cap(soa.X))
	}
	base := soa.X[:0]
	for i := 0; i < 100; i++ {
		soa.Append(Point3{X: float64(i)})
	}
	if &base[0:1][0] != &soa.X[0] {
		t.Fatal("Append reallocated despite Grow reservation")
	}
	soa.Reset()
	if soa.Len() != 0 || cap(soa.X) < 100 {
		t.Fatalf("Reset dropped capacity: len %d cap %d", soa.Len(), cap(soa.X))
	}
}

func TestSoABoundsMaxAbsCentroid(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	var soa CloudSoA
	if !soa.Bounds().IsEmpty() {
		t.Fatal("empty SoA Bounds not empty")
	}
	if soa.MaxAbs() != 0 {
		t.Fatal("empty SoA MaxAbs != 0")
	}
	cloud := widen(randCloud(rng, 400))
	soa.FromCloud(cloud)
	want := cloud.Bounds()
	got := soa.Bounds()
	if got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("Bounds %+v != Cloud.Bounds %+v", got, want)
	}
	wantAbs := 0.0
	for _, p := range cloud {
		wantAbs = math.Max(wantAbs, math.Max(math.Abs(p.X), math.Max(math.Abs(p.Y), math.Abs(p.Z))))
	}
	if soa.MaxAbs() != wantAbs {
		t.Fatalf("MaxAbs %g != %g", soa.MaxAbs(), wantAbs)
	}
	c, wc := soa.Centroid(), cloud.Centroid()
	if math.Abs(c.X-wc.X) > 1e-9 || math.Abs(c.Y-wc.Y) > 1e-9 || math.Abs(c.Z-wc.Z) > 1e-9 {
		t.Fatalf("Centroid %v != %v", c, wc)
	}
}

// TestAppendTranslated checks the fused clone+translate+append against
// the explicit composition it replaced, and pins its allocation
// behavior: exactly one allocation from nil, zero into spare capacity.
func TestAppendTranslated(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	src := randCloud(rng, 128)
	d := P(2.5, -1.25, 0.5)

	want := append(Cloud{{X: 9}}, src.Clone().Translate(d)...)
	got := AppendTranslated(Cloud{{X: 9}}, src, d)
	if len(got) != len(want) {
		t.Fatalf("len %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("point %d: %v != %v", i, got[i], want[i])
		}
	}

	if allocs := testing.AllocsPerRun(50, func() {
		_ = AppendTranslated(nil, src, d)
	}); allocs != 1 {
		t.Fatalf("AppendTranslated(nil, ...) allocs = %.1f, want 1", allocs)
	}
	buf := make(Cloud, 0, 2*len(src))
	if allocs := testing.AllocsPerRun(50, func() {
		buf = AppendTranslated(buf[:0], src, d)
	}); allocs != 0 {
		t.Fatalf("AppendTranslated into spare capacity allocs = %.1f, want 0", allocs)
	}
}
