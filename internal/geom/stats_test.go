package geom

import (
	"math"
	"testing"
)

func TestAxisValues(t *testing.T) {
	c := Cloud{{1, 2, 3}, {4, 5, 6}}
	if got := AxisValues(c, 0); got[0] != 1 || got[1] != 4 {
		t.Errorf("x values = %v", got)
	}
	if got := AxisValues(c, 2); got[0] != 3 || got[1] != 6 {
		t.Errorf("z values = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	vals := []float64{0, 0.5, 1.5, 2.5, 9.9, -5, 15}
	h := NewHistogram(vals, 0, 10, 10)
	if h.Total() != len(vals) {
		t.Fatalf("Total = %d, want %d (out-of-range values must clamp)", h.Total(), len(vals))
	}
	// -5 clamps into bin 0; 15 clamps into bin 9.
	if h.Counts[0] != 3 { // 0, 0.5, -5
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[9] != 2 { // 9.9, 15
		t.Errorf("bin 9 = %d, want 2", h.Counts[9])
	}
	if got := h.BinWidth(); got != 1 {
		t.Errorf("BinWidth = %v", got)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{1, 2}, 5, 5, 4) // max <= min
	if h.Total() != 0 {
		t.Error("degenerate range should bin nothing")
	}
	h2 := NewHistogram([]float64{1}, 0, 1, 0)
	if h2.BinWidth() != 0 {
		t.Error("zero bins should have zero width")
	}
}

func TestMeanStdDev(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(vals); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := StdDev(vals); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{3, 1, 2, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {150, 5},
	}
	for _, tt := range tests {
		if got := Percentile(vals, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 25); got != 2.5 {
		t.Errorf("interpolated percentile = %v, want 2.5", got)
	}
}
