package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Point3{1, 2, 3}
	q := Point3{4, -5, 6}

	if got := p.Add(q); got != (Point3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1*4+2*-5+3*6 {
		t.Errorf("Dot = %v", got)
	}
}

func TestDistMatchesDist2(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		// Constrain magnitudes to avoid overflow-driven false negatives.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		p := Point3{clamp(ax), clamp(ay), clamp(az)}
		q := Point3{clamp(bx), clamp(by), clamp(bz)}
		d := p.Dist(q)
		return math.Abs(d*d-p.Dist2(q)) <= 1e-6*(1+p.Dist2(q))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoordPanicsOnBadAxis(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for axis 3")
		}
	}()
	Point3{}.Coord(3)
}

func TestCentroid(t *testing.T) {
	tests := []struct {
		name  string
		cloud Cloud
		want  Point3
	}{
		{"empty", nil, Point3{}},
		{"single", Cloud{{1, 2, 3}}, Point3{1, 2, 3}},
		{"symmetric", Cloud{{-1, 0, 0}, {1, 0, 0}, {0, -2, 4}, {0, 2, -4}}, Point3{0, 0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.cloud.Centroid()
			if !almostEqual(got.X, tt.want.X) || !almostEqual(got.Y, tt.want.Y) || !almostEqual(got.Z, tt.want.Z) {
				t.Errorf("Centroid() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := Cloud{{1, 1, 1}}
	d := c.Clone()
	d[0] = Point3{9, 9, 9}
	if c[0] != (Point3{1, 1, 1}) {
		t.Error("Clone shares storage with original")
	}
}

func TestTranslate(t *testing.T) {
	c := Cloud{{1, 1, 1}, {2, 2, 2}}
	c.Translate(Point3{1, -1, 0})
	if c[0] != (Point3{2, 0, 1}) || c[1] != (Point3{3, 1, 2}) {
		t.Errorf("Translate result %v", c)
	}
}

func TestBounds(t *testing.T) {
	c := Cloud{{1, 5, -2}, {-3, 2, 7}, {0, 0, 0}}
	b := c.Bounds()
	if b.Min != (Point3{-3, 0, -2}) || b.Max != (Point3{1, 5, 7}) {
		t.Errorf("Bounds = %+v", b)
	}
	if Cloud(nil).Bounds().IsEmpty() != true {
		t.Error("empty cloud should produce empty box")
	}
}

func TestBoxContainsAndExtend(t *testing.T) {
	b := EmptyBox()
	if !b.IsEmpty() {
		t.Fatal("EmptyBox not empty")
	}
	b = b.Extend(Point3{1, 1, 1})
	if b.IsEmpty() || !b.Contains(Point3{1, 1, 1}) {
		t.Fatal("Extend failed to create degenerate box")
	}
	b = b.Extend(Point3{-1, 2, 0})
	if !b.Contains(Point3{0, 1.5, 0.5}) {
		t.Error("box should contain interior point")
	}
	if b.Contains(Point3{2, 0, 0}) {
		t.Error("box should not contain exterior point")
	}
}

func TestBoxUnion(t *testing.T) {
	a := Box{Min: Point3{0, 0, 0}, Max: Point3{1, 1, 1}}
	b := Box{Min: Point3{2, 2, 2}, Max: Point3{3, 3, 3}}
	u := a.Union(b)
	if u.Min != (Point3{0, 0, 0}) || u.Max != (Point3{3, 3, 3}) {
		t.Errorf("Union = %+v", u)
	}
	if got := EmptyBox().Union(a); got != a {
		t.Errorf("empty union a = %+v", got)
	}
	if got := a.Union(EmptyBox()); got != a {
		t.Errorf("a union empty = %+v", got)
	}
}

func TestBoxSizeAndCenter(t *testing.T) {
	b := Box{Min: Point3{0, -2, 1}, Max: Point3{4, 2, 3}}
	if b.Size() != (Point3{4, 4, 2}) {
		t.Errorf("Size = %v", b.Size())
	}
	if b.Center() != (Point3{2, 0, 2}) {
		t.Errorf("Center = %v", b.Center())
	}
	if EmptyBox().Size() != (Point3{}) {
		t.Error("empty box size should be zero")
	}
}

func TestBoxDist2ToPoint(t *testing.T) {
	b := Box{Min: Point3{0, 0, 0}, Max: Point3{1, 1, 1}}
	tests := []struct {
		p    Point3
		want float64
	}{
		{Point3{0.5, 0.5, 0.5}, 0}, // inside
		{Point3{2, 0.5, 0.5}, 1},   // off one face
		{Point3{2, 2, 0.5}, 2},     // off an edge
		{Point3{2, 2, 2}, 3},       // off a corner
		{Point3{-1, 0.5, 0.5}, 1},  // negative side
		{Point3{1, 1, 1}, 0},       // on the boundary
	}
	for _, tt := range tests {
		if got := b.Dist2ToPoint(tt.p); !almostEqual(got, tt.want) {
			t.Errorf("Dist2ToPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestFilterAndMinMaxZ(t *testing.T) {
	c := Cloud{{0, 0, -3}, {0, 0, -1}, {0, 0, 2}}
	kept := c.Filter(func(p Point3) bool { return p.Z >= -2.6 })
	if len(kept) != 2 {
		t.Fatalf("Filter kept %d points, want 2", len(kept))
	}
	if got := c.MinZ(); got != -3 {
		t.Errorf("MinZ = %v", got)
	}
	if got := c.MaxZ(); got != 2 {
		t.Errorf("MaxZ = %v", got)
	}
	if !math.IsInf(Cloud(nil).MinZ(), 1) || !math.IsInf(Cloud(nil).MaxZ(), -1) {
		t.Error("empty cloud min/max should be ±Inf")
	}
}
