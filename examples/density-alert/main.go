// Density-alert: the emergency scenario the paper's introduction
// motivates. A pole watches a walkway as a crowd builds from a handful of
// people to a high-density gathering; the moment the estimated density
// crosses Fruin's "high" threshold the monitor raises an alert.
//
//	go run ./examples/density-alert
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hawccc"
	"hawccc/internal/dataset"
)

// walkwayArea is the monitored footprint in m² (the paper's scalability
// setup simulates a 100 m² area).
const walkwayArea = 100.0

func main() {
	fmt.Println("training the counter...")
	train := hawccc.GenerateTrainingData(3, 250)
	opts := hawccc.DefaultTrainOptions()
	opts.Epochs = 10
	counter, err := hawccc.Train(train, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Build a crowd that grows over time by composing single-person
	// captures (the paper's high-density synthesis).
	var humanPool, objectPool []hawccc.Sample
	for _, s := range train {
		if s.Human {
			humanPool = append(humanPool, s)
		} else {
			objectPool = append(objectPool, s)
		}
	}
	rng := rand.New(rand.NewSource(9))

	fmt.Println("\nmonitoring (Fruin density levels: <1 low, <2 moderate, ≥2 high):")
	alerted := false
	for _, people := range []int{5, 20, 60, 120, 180, 220, 250} {
		frame := dataset.HighDensityFrame(rng, humanPool, objectPool, people)
		r := counter.Count(frame.Cloud)
		density := float64(r.Count) / walkwayArea
		level := "LOW"
		switch {
		case density >= 2:
			level = "HIGH"
		case density >= 1:
			level = "MODERATE"
		}
		fmt.Printf("  t+%2dmin: counted %3d (actual %3d) → %.2f people/m² [%s]\n",
			people/5, r.Count, frame.Count, density, level)
		if level == "HIGH" && !alerted {
			alerted = true
			fmt.Printf("  *** ALERT: unusual crowding detected (%.2f people/m²) — notify campus safety ***\n", density)
		}
	}
	if !alerted {
		fmt.Println("note: crowd never crossed the high-density threshold")
	}
}
