// Quickstart: train a HAWC-CC counter on simulated campus data and count
// the people in a handful of LiDAR frames.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hawccc"
)

func main() {
	// 1. Synthesize training data: single-person and object captures from
	//    the built-in walkway simulator (stands in for the paper's pole
	//    deployment captures).
	fmt.Println("generating training data...")
	train := hawccc.GenerateTrainingData(1, 300)

	// 2. Train the Height-Aware Human Classifier and assemble the
	//    counting pipeline (ground filter → adaptive DBSCAN → HAWC).
	fmt.Println("training HAWC (this takes a minute on one core)...")
	opts := hawccc.DefaultTrainOptions()
	opts.Epochs = 12
	opts.Progress = func(epoch int) { fmt.Printf("  epoch %d done\n", epoch+1) }
	counter, err := hawccc.Train(train, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Count people in fresh frames.
	frames := hawccc.GenerateFrames(99, 5, 1, 5)
	fmt.Println("\ncounting:")
	for i, f := range frames {
		r := counter.Count(f.Cloud)
		fmt.Printf("  frame %d: predicted %d people (truth %d) — %d clusters, %.1f ms\n",
			i, r.Count, f.Count, r.Clusters,
			float64(r.Latency.Total().Microseconds())/1000)
	}

	// 4. Quantize to int8 for edge deployment and compare.
	counterQ, err := counter.Quantize(train[:100])
	if err != nil {
		log.Fatal(err)
	}
	ev, err := counter.Evaluate(frames)
	if err != nil {
		log.Fatal(err)
	}
	evQ, err := counterQ.Evaluate(frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfp32: MAE %.2f  MSE %.2f\nint8: MAE %.2f  MSE %.2f\n",
		ev.MAE, ev.MSE, evQ.MAE, evQ.MSE)
}
