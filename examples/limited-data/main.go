// Limited-data: the Figure 8b scenario — how little labeled data does
// HAWC actually need? The paper's standout robustness result is 90.29%
// accuracy from just 0.1% of the training data. This example retrains
// HAWC on shrinking subsets and prints the degradation curve.
//
//	go run ./examples/limited-data
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hawccc"
	"hawccc/internal/dataset"
)

func main() {
	fmt.Println("generating data...")
	all := hawccc.GenerateTrainingData(5, 400)
	split := dataset.TrainTestSplit(rand.New(rand.NewSource(2)), all, 0.8)
	rng := rand.New(rand.NewSource(3))

	fmt.Println("training on shrinking subsets:")
	for _, frac := range []float64{1.0, 0.25, 0.05, 0.01} {
		sub := dataset.Subset(rng, split.Train, frac)
		opts := hawccc.DefaultTrainOptions()
		opts.Epochs = 12
		counter, err := hawccc.Train(sub, opts)
		if err != nil {
			log.Fatal(err)
		}
		acc, p, r, f1 := counter.EvaluateClassifier(split.Test)
		fmt.Printf("  %6.1f%% of data (%4d samples): acc %.2f%%  P %.2f  R %.2f  F1 %.2f\n",
			frac*100, len(sub), acc*100, p, r, f1)
	}
	fmt.Println("\nHAWC's height-aware projections keep the task learnable even from")
	fmt.Println("a few dozen samples — the property Figure 8b quantifies.")
}
