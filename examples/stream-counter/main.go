// Stream-counter: count people continuously with Counter.Stream — the
// staged scheduler that overlaps ingest, clustering, and classification
// of consecutive frames — instead of a frame-at-a-time Count loop.
//
//	go run ./examples/stream-counter
//
// Ctrl-C stops the stream mid-run: in-flight frames are dropped, the
// result channel closes, and the summary still prints.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hawccc"
)

func main() {
	// 1. Train a counter exactly as in the quickstart.
	fmt.Println("training HAWC (this takes a minute on one core)...")
	train := hawccc.GenerateTrainingData(1, 300)
	opts := hawccc.DefaultTrainOptions()
	opts.Epochs = 12
	counter, err := hawccc.Train(train, opts)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// 2. Feed frames into a channel as a sensor would produce them. The
	//    scheduler's bounded queues backpressure this loop when counting
	//    falls behind, so nothing accumulates unboundedly.
	frames := hawccc.GenerateFrames(99, 40, 1, 6)
	in := make(chan hawccc.Frame)
	go func() {
		defer close(in)
		for _, f := range frames {
			select {
			case in <- f:
			case <-ctx.Done():
				return
			}
		}
	}()

	// 3. Consume ordered results as they complete. Stages of different
	//    frames run concurrently, so throughput beats a Count loop while
	//    each frame's counts stay bit-identical to Count's.
	fmt.Println("\nstreaming:")
	var n, people int
	start := time.Now()
	for r := range counter.Stream(ctx, in) {
		fmt.Printf("  frame %2d: %d people in %d clusters (truth %d) — e2e %.1f ms\n",
			r.Seq, r.Count, r.Clusters, frames[r.Seq].Count,
			float64(r.E2E.Microseconds())/1000)
		n++
		people += r.Count
	}
	elapsed := time.Since(start)

	if n > 0 {
		fmt.Printf("\n%d frames in %v (%.1f frames/s), %.1f people per frame on average\n",
			n, elapsed.Round(time.Millisecond),
			float64(n)/elapsed.Seconds(), float64(people)/float64(n))
	}
	if ctx.Err() != nil {
		fmt.Println("interrupted — stream drained and closed cleanly")
	}
}
