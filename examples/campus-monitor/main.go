// Campus-monitor: the Figure 1 scenario end to end. Three smart blue
// light poles each run the counting pipeline on the edge and stream count
// reports and compartment telemetry over TCP to the private campus
// backend, which aggregates per-pole statistics. Raw point clouds never
// leave the poles.
//
//	go run ./examples/campus-monitor
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"

	"hawccc/internal/backend"
	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/models"
	"hawccc/internal/pole"
	"hawccc/internal/telemetry"
)

func main() {
	// Train one HAWC model shared by all poles (in production each pole
	// would load the same released weights).
	fmt.Println("training the shared HAWC model...")
	g := dataset.NewGenerator(7)
	train := g.Classification(250)
	clf := models.NewHAWC()
	if err := clf.Train(train, models.TrainConfig{Epochs: 10, Seed: 7}); err != nil {
		log.Fatal(err)
	}

	// Campus backend on loopback.
	srv, err := backend.Listen(backend.Config{
		Addr:          "127.0.0.1:0",
		CrowdingLimit: 5,
		OverheatLimit: 50,
		Logf:          func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("campus backend listening on", srv.Addr())

	// Summer telemetry, one reading per frame.
	readings := telemetry.Simulate(telemetry.SummerConfig())

	locations := []string{"Palm Walk", "University Dr", "Forest Mall"}
	var wg sync.WaitGroup
	for id := uint32(1); id <= 3; id++ {
		frames := g.CrowdFrames(6, 1, 6, 2)
		node, err := pole.Dial(pole.Config{
			PoleID:      id,
			Location:    locations[id-1],
			BackendAddr: srv.Addr(),
			Pipeline:    counting.New(clf),
			Source:      &pole.SliceSource{Frames: frames},
			Telemetry:   readings[500*int(id):],
		})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id uint32) {
			defer wg.Done()
			n, err := node.Run(context.Background())
			if err != nil {
				log.Printf("pole %d: %v", id, err)
			}
			fmt.Printf("pole %d processed %d frames, received %d alerts\n",
				id, n, len(node.Alerts()))
		}(id)
	}
	wg.Wait()

	fmt.Println("\ncampus snapshot:")
	for _, p := range srv.Snapshot() {
		fmt.Printf("  pole %d (%s): %d reports, last count %d, peak %d, total %d, last temp %.1f°C\n",
			p.PoleID, p.Location, p.Reports, p.LastCount, p.PeakCount, p.TotalCount, p.LastTemp)
	}
	fmt.Printf("current campus-wide count: %d\n", srv.CampusCount())
	fmt.Printf("alerts raised: %d\n", len(srv.Alerts()))
}
