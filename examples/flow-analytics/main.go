// Flow-analytics: the pedestrian-behavior analysis the paper's
// introduction motivates ("popular routes, peak times, and common
// gathering areas"). A pole watches a sequence of frames where pedestrians
// walk the corridor in both directions; detections are associated into
// trajectories, and the example reports per-pedestrian speeds and the
// inbound/outbound flow split.
//
//	go run ./examples/flow-analytics
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/lidarsim"
	"hawccc/internal/models"
	"hawccc/internal/track"
)

func main() {
	fmt.Println("training HAWC...")
	g := dataset.NewGenerator(21)
	clf := models.NewHAWC()
	if err := clf.Train(g.Classification(250), models.TrainConfig{Epochs: 10, Seed: 21}); err != nil {
		log.Fatal(err)
	}
	pipeline := counting.New(clf)

	// Simulate 30 frames at 10 Hz: three walkers crossing the corridor.
	rng := rand.New(rand.NewSource(5))
	sensor := lidarsim.NewSensor(lidarsim.DefaultSensorConfig(), rng)
	type walker struct {
		y, x0, speed float64 // m/s along x; negative = toward the pole
		h            lidarsim.HumanParams
	}
	walkers := []walker{
		{y: -1.0, x0: 14, speed: +1.4},
		{y: 0.5, x0: 30, speed: -1.2},
		{y: 1.5, x0: 18, speed: +1.6},
	}
	tracker := track.NewTracker(track.DefaultConfig())
	const dt = 0.1 // seconds per frame
	for f := 0; f < 30; f++ {
		scene := &lidarsim.Scene{}
		for _, w := range walkers {
			x := w.x0 + w.speed*dt*float64(f)
			p := lidarsim.RandomHumanParams(rng, x, w.y)
			scene.AddHuman(lidarsim.NewHuman(p))
		}
		frame := lidarsim.CloudOf(sensor.Scan(scene))
		count := tracker.ObserveFrame(pipeline, geom.Cloud(frame))
		if f%10 == 0 {
			fmt.Printf("  frame %2d: %d pedestrians in view\n", f, count)
		}
	}

	fmt.Println("\ntrajectories:")
	for _, tr := range tracker.All() {
		if len(tr.Positions) < 5 {
			continue // clutter
		}
		dir := "outbound"
		if tr.Displacement().X < 0 {
			dir = "inbound"
		}
		fmt.Printf("  track %d: %d observations, %.1f m path, %.2f m/s, %s\n",
			tr.ID, len(tr.Positions), tr.Length(),
			tr.MeanSpeed(track.DefaultConfig().FrameInterval), dir)
	}
	flow := tracker.Flow()
	fmt.Printf("\nflow summary: %d pedestrians, mean speed %.2f m/s, %d inbound / %d outbound\n",
		flow.Tracks, flow.MeanSpeed, flow.Inbound, flow.Outbound)
}
