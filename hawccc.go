// Package hawccc is the public API of the HAWC-CC reproduction: a
// real-time, privacy-preserving LiDAR crowd-counting framework for smart
// campuses ("Smart Blue Light Pole-Based Real-Time Crowd Counting for
// Smart Campuses", ICDCS 2025).
//
// The typical flow:
//
//	train := hawccc.GenerateTrainingData(42, 1200)
//	counter, err := hawccc.Train(train, hawccc.DefaultTrainOptions())
//	...
//	result := counter.Count(frameCloud) // people in one LiDAR frame
//
// Counter wraps the full pipeline of the paper's Figure 3: ROI crop and
// ground segmentation, adaptive-ε DBSCAN clustering, and the Height-Aware
// Human Classifier over each cluster. Quantize converts the classifier to
// int8 for edge deployment. The internal packages expose the substrates
// (simulator, clustering, networks, campus networking) to code inside this
// module; downstream users drive everything through this package and the
// binaries in cmd/.
package hawccc

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/ground"
	"hawccc/internal/metrics"
	"hawccc/internal/models"
)

// Point is a single LiDAR return in sensor-frame meters (x down the
// walkway, y across it, z up; ground at z = −3).
type Point = geom.Point3

// Cloud is an unordered LiDAR point cloud.
type Cloud = geom.Cloud

// P constructs a Point.
func P(x, y, z float64) Point { return geom.P(x, y, z) }

// Sample is a labeled cluster for classifier training.
type Sample = dataset.Sample

// Frame is a full LiDAR capture with a crowd-count ground truth.
type Frame = dataset.Frame

// TrainOptions configures Train.
type TrainOptions struct {
	// Epochs is the CNN training budget (default 30).
	Epochs int
	// Seed drives all randomness (default 1).
	Seed int64
	// Progress, if non-nil, receives the epoch index after each epoch.
	Progress func(epoch int)
}

// DefaultTrainOptions returns the deployment training configuration.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 30, Seed: 1}
}

// Counter counts people in LiDAR frames. A trained Counter is safe for
// concurrent use: its classifier derives per-call randomness from cluster
// content and its network runs a stateless inference pass, so any number
// of goroutines may share one Counter — the fan-out pattern for a pole
// node serving several sensors.
type Counter struct {
	pipeline   *counting.Pipeline
	classifier *models.HAWC
}

// Result describes one counted frame.
type Result struct {
	// Count is the number of people detected.
	Count int
	// Clusters is the number of candidate clusters examined.
	Clusters int
	// Latency is the end-to-end processing time of this frame.
	Latency Latency
}

// Latency is the per-stage breakdown of one frame's processing.
type Latency = counting.Timing

// GenerateTrainingData synthesizes a balanced single-person/object
// classification dataset of n samples per class using the built-in
// campus walkway simulator (a stand-in for the paper's pole captures).
func GenerateTrainingData(seed int64, nPerClass int) []Sample {
	return dataset.NewGenerator(seed).Classification(nPerClass)
}

// GenerateFrames synthesizes full LiDAR frames containing between
// minPeople and maxPeople pedestrians plus campus objects.
func GenerateFrames(seed int64, n, minPeople, maxPeople int) []Frame {
	return dataset.NewGenerator(seed).CrowdFrames(n, minPeople, maxPeople, 2)
}

// Train fits the HAWC classifier on labeled cluster samples and assembles
// the full counting pipeline around it.
func Train(samples []Sample, opts TrainOptions) (*Counter, error) {
	if opts.Epochs == 0 {
		opts.Epochs = 30
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	h := models.NewHAWC()
	err := h.Train(samples, models.TrainConfig{
		Epochs:   opts.Epochs,
		Seed:     opts.Seed,
		Progress: opts.Progress,
	})
	if err != nil {
		return nil, fmt.Errorf("hawccc: %w", err)
	}
	return &Counter{pipeline: counting.New(h), classifier: h}, nil
}

// CountOptions configures how a frame (or frame set) is processed.
type CountOptions struct {
	// Parallelism is the number of worker goroutines: 0 or 1 processes
	// sequentially, n > 1 fans work out across n goroutines. For Count
	// the workers split one frame's clusters; for Evaluate they split the
	// frame set. Results are identical at every setting — inference is
	// deterministic per cluster — so Parallelism is purely a latency
	// knob. Set it to the pole hardware's core count (the default).
	Parallelism int
}

// DefaultCountOptions uses every core, the deployment configuration for a
// pole node whose frame budget is the bottleneck.
func DefaultCountOptions() CountOptions {
	return CountOptions{Parallelism: runtime.NumCPU()}
}

// Count processes one raw LiDAR frame: ingestion, adaptive clustering,
// per-cluster classification across all cores. A Counter is safe for
// concurrent use: many goroutines may call Count on one shared Counter.
func (c *Counter) Count(frame Cloud) Result {
	r := c.pipeline.Count(frame)
	return Result{Count: r.Count, Clusters: r.Clusters, Latency: r.Timing}
}

// CountWith is Count with explicit options for this call.
func (c *Counter) CountWith(frame Cloud, opts CountOptions) Result {
	r := c.pipeline.CountWorkers(frame, sequentialIfZero(opts.Parallelism))
	return Result{Count: r.Count, Clusters: r.Clusters, Latency: r.Timing}
}

// CountParallel processes one frame with a full-width worker pool — an
// explicit spelling of Count's default behavior, kept for callers that
// tuned the pipeline's Parallelism down and want one fast frame.
func (c *Counter) CountParallel(frame Cloud) Result {
	return c.CountWith(frame, DefaultCountOptions())
}

// StreamOptions configures the staged streaming scheduler behind
// Counter.StreamWith: per-stage worker counts and the bounded depth of
// the inter-stage queues. The zero value selects the deployment
// defaults (see counting.DefaultStreamConfig).
type StreamOptions = counting.StreamConfig

// StreamResult is one counted frame from a Counter stream.
type StreamResult struct {
	// Seq is the frame's 0-based position on the input channel; results
	// arrive in Seq order.
	Seq uint64
	// E2E is the frame's end-to-end latency through the scheduler,
	// including inter-stage queueing (Latency covers only compute).
	E2E time.Duration
	Result
}

// Stream counts frames continuously: it runs the staged scheduler
// (ingest → cluster → classify → report, connected by bounded queues)
// over the input channel and delivers one Result per frame, in input
// order, on the returned channel. Unlike a Count loop, the stages of
// consecutive frames overlap, so a pole node sustains a higher frame
// rate at the same core count while memory stays bounded by the queue
// depths — a slow consumer backpressures the stream instead of growing
// a backlog.
//
// The stream ends when the input channel closes (every accepted frame's
// result is flushed, then the returned channel closes) or when ctx is
// canceled (in-flight frames are dropped and the channel closes). The
// per-frame counts are bit-identical to Count's: both paths execute the
// same stage code.
func (c *Counter) Stream(ctx context.Context, frames <-chan Frame) <-chan StreamResult {
	return c.StreamWith(ctx, frames, StreamOptions{})
}

// StreamWith is Stream with an explicit scheduler configuration.
func (c *Counter) StreamWith(ctx context.Context, frames <-chan Frame, opts StreamOptions) <-chan StreamResult {
	clouds := make(chan Cloud)
	go func() {
		defer close(clouds)
		for {
			select {
			case <-ctx.Done():
				return
			case f, ok := <-frames:
				if !ok {
					return
				}
				select {
				case clouds <- f.Cloud:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	inner := c.pipeline.StreamWith(ctx, clouds, opts)
	out := make(chan StreamResult)
	go func() {
		defer close(out)
		for r := range inner {
			sr := StreamResult{
				Seq: r.Seq,
				E2E: r.E2E,
				Result: Result{
					Count:    r.Count,
					Clusters: r.Clusters,
					Latency:  r.Timing,
				},
			}
			select {
			case out <- sr:
			case <-ctx.Done():
				for range inner {
					// Drain so the scheduler can wind down.
				}
				return
			}
		}
	}()
	return out
}

// sequentialIfZero maps the public options convention (0 = sequential) to
// the pipeline's worker-count convention (0 = NumCPU).
func sequentialIfZero(parallelism int) int {
	if parallelism <= 0 {
		return 1
	}
	return parallelism
}

// Quantize converts the counter's classifier to int8 inference using the
// given calibration samples (typically ~100 training samples), returning
// a new Counter. The original is unchanged.
func (c *Counter) Quantize(calib []Sample) (*Counter, error) {
	q, err := c.classifier.Quantize(calib)
	if err != nil {
		return nil, fmt.Errorf("hawccc: %w", err)
	}
	return &Counter{pipeline: counting.New(q), classifier: q}, nil
}

// ClassifyCluster labels a single clustered cloud as human or not —
// useful when the caller runs its own segmentation.
func (c *Counter) ClassifyCluster(cluster Cloud) bool {
	return c.classifier.PredictHuman(cluster)
}

// SaveWeights serializes the trained classifier weights.
func (c *Counter) SaveWeights(w io.Writer) error {
	if c.classifier.Network() == nil {
		return fmt.Errorf("hawccc: counter not trained")
	}
	if err := c.classifier.Network().Save(w); err != nil {
		return fmt.Errorf("hawccc: %w", err)
	}
	return nil
}

// Save serializes the entire trained counter — classifier weights,
// projector identity, and the object pool used for up-sampling — so it
// can be reloaded with Load without retraining.
func (c *Counter) Save(w io.Writer) error {
	if err := c.classifier.Save(w); err != nil {
		return fmt.Errorf("hawccc: %w", err)
	}
	return nil
}

// Load reconstructs a Counter previously written by Save.
func Load(r io.Reader) (*Counter, error) {
	h, err := models.LoadHAWC(r)
	if err != nil {
		return nil, fmt.Errorf("hawccc: %w", err)
	}
	return &Counter{pipeline: counting.New(h), classifier: h}, nil
}

// Evaluation summarizes counting accuracy over labeled frames.
type Evaluation struct {
	MAE, MSE float64
	// Accuracy is 1 − MAE/mean-truth (the paper's percentage accuracy).
	Accuracy float64
}

// Evaluate runs the counter over labeled frames one frame at a time.
func (c *Counter) Evaluate(frames []Frame) (Evaluation, error) {
	ev, err := counting.Evaluate(c.pipeline, frames)
	if err != nil {
		return Evaluation{}, fmt.Errorf("hawccc: %w", err)
	}
	return Evaluation{MAE: ev.MAE, MSE: ev.MSE, Accuracy: ev.Accuracy()}, nil
}

// EvaluateWith runs the counter over labeled frames fanned out across
// opts.Parallelism worker goroutines. MAE, MSE, and Accuracy are identical
// to Evaluate's at every worker count; only the wall-clock time changes.
func (c *Counter) EvaluateWith(frames []Frame, opts CountOptions) (Evaluation, error) {
	ev, err := counting.EvaluateParallel(c.pipeline, frames, sequentialIfZero(opts.Parallelism))
	if err != nil {
		return Evaluation{}, fmt.Errorf("hawccc: %w", err)
	}
	return Evaluation{MAE: ev.MAE, MSE: ev.MSE, Accuracy: ev.Accuracy()}, nil
}

// EvaluateParallel is EvaluateWith at full core width.
func (c *Counter) EvaluateParallel(frames []Frame) (Evaluation, error) {
	return c.EvaluateWith(frames, DefaultCountOptions())
}

// EvaluateClassifier measures single-cluster detection accuracy on
// labeled samples, returning accuracy, precision, recall, and F1.
func (c *Counter) EvaluateClassifier(samples []Sample) (acc, precision, recall, f1 float64) {
	conf := models.Evaluate(c.classifier, samples)
	return conf.Accuracy(), conf.Precision(), conf.Recall(), conf.F1()
}

// ROI returns the deployment region of interest (x 12–35 m, the 5 m
// walkway, z within the pole's detection band).
func ROI() (xMin, xMax, yMin, yMax float64) {
	r := ground.DefaultROI()
	return r.XMin, r.XMax, r.YMin, r.YMax
}

// CountingAccuracy computes the paper's accuracy metric from predicted
// and ground-truth counts.
func CountingAccuracy(pred, truth []float64) float64 {
	return metrics.CountingAccuracy(pred, truth)
}
