package hawccc

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section VII), each regenerating the corresponding result on
// the Quick experiment configuration, plus microbenchmarks of the hot
// pipeline stages. Run:
//
//	go test -bench=. -benchmem
//
// The shared lab trains each model once (outside the timed region where
// possible); Table III, Figure 8b and Figure 9 retrain by design, so their
// iterations are expensive — the Quick preset keeps them tractable.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"hawccc/internal/cluster"
	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/experiments"
	"hawccc/internal/ground"
	"hawccc/internal/models"
	"hawccc/internal/projection"
	"hawccc/internal/upsample"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

// lab returns the shared Quick-config lab, training models on first use.
func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		benchLab = experiments.NewLab(experiments.Quick())
	})
	return benchLab
}

func BenchmarkTableI(b *testing.B) {
	l := lab(b)
	l.HAWC() // train outside the timer
	l.HAWCInt8()
	l.PointNet()
	l.PointNetInt8()
	l.AutoEncoder()
	l.AutoEncoderInt8()
	l.OCSVM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.TableI(l)
		if len(rows) != 4 {
			b.Fatal("table I must have 4 rows")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	l := lab(b)
	l.HAWCInt8()
	l.PointNetInt8()
	l.AutoEncoderInt8()
	l.OCSVM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.TableII(l)
		if len(rows) != 8 {
			b.Fatal("table II must have 8 rows")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	l := lab(b)
	l.HAWC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.TableIII(l) // retrains 3 Gaussian variants
		if len(rows) != 4 {
			b.Fatal("table III must have 4 rows")
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	l := lab(b)
	l.HAWC()
	l.Frames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.TableIV(l)
		if len(rows) != 7 {
			b.Fatal("table IV must have 7 rows")
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	l := lab(b)
	l.HAWCInt8()
	l.PointNetInt8()
	l.AutoEncoderInt8()
	l.OCSVM()
	l.Frames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.TableV(l)
		if len(rows) != 4 {
			b.Fatal("table V must have 4 rows")
		}
	}
}

func BenchmarkTableVI(b *testing.B) {
	l := lab(b)
	l.HAWC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.TableVI(l)
		if len(rows) != 12 {
			b.Fatal("table VI must have 12 rows")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	l := lab(b)
	l.Frames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4(l)
		if len(r.Curve) == 0 {
			b.Fatal("empty curve")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	l := lab(b)
	l.Split()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure6(l)
		if r.Human[2].Total() == 0 {
			b.Fatal("empty z histogram")
		}
	}
}

func BenchmarkFigure8a(b *testing.B) {
	l := lab(b)
	l.Split()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := experiments.Figure8a(l) // retrains all three models
		if len(rs) != 3 {
			b.Fatal("figure 8a needs 3 curves")
		}
	}
}

func BenchmarkFigure8b(b *testing.B) {
	l := lab(b)
	l.Split()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := experiments.Figure8b(l) // retrains 3 models × 5 fractions
		if len(rs) != 3 {
			b.Fatal("figure 8b needs 3 curves")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	l := lab(b)
	l.HAWC()
	l.Frames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := experiments.Figure9(l) // retrains 4 projection variants
		if len(rs) != 5 {
			b.Fatal("figure 9 needs 5 projections")
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure10()
		if len(r.Readings) == 0 {
			b.Fatal("no readings")
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	l := lab(b)
	l.Split()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := experiments.Figure11(l)
		if len(rs) != 3 {
			b.Fatal("figure 11 needs 3 density levels")
		}
	}
}

// --- Microbenchmarks of the pipeline's hot stages ---

func benchFrame(b *testing.B) dataset.Frame {
	b.Helper()
	g := dataset.NewGenerator(77)
	return g.CrowdFrames(1, 3, 3, 2)[0]
}

func BenchmarkIngest(b *testing.B) {
	f := benchFrame(b)
	roi := ground.DefaultROI()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ground.Ingest(f.Cloud, roi)
	}
}

func BenchmarkAdaptiveClustering(b *testing.B) {
	f := benchFrame(b)
	cloud := ground.Ingest(f.Cloud, ground.DefaultROI())
	cfg := cluster.DefaultAdaptiveConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cluster.Adaptive(cloud, cfg)
	}
}

func BenchmarkOptimalEpsilon(b *testing.B) {
	f := benchFrame(b)
	cloud := ground.Ingest(f.Cloud, ground.DefaultROI())
	cfg := cluster.DefaultAdaptiveConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cluster.OptimalEpsilon(cloud, cfg)
	}
}

func BenchmarkHAPProjection(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cloud := make(Cloud, 289)
	for i := range cloud {
		cloud[i] = P(rng.NormFloat64()*0.3, rng.NormFloat64()*0.3, rng.Float64()*1.8)
	}
	proj := projection.HAP{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = proj.Project(cloud)
	}
}

func BenchmarkUpsampleFromPool(b *testing.B) {
	g := dataset.NewGenerator(5)
	samples := g.Objects(20)
	var clouds []Cloud
	for _, s := range samples {
		clouds = append(clouds, s.Cloud)
	}
	pool := upsample.NewPool(clouds)
	human := g.SinglePerson(1)[0].Cloud
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = upsample.FromPool(rng, human, pool, 289)
	}
}

// BenchmarkHAWCInference measures the trained classifier's single-cluster
// latency on this host — the real-time budget the paper's Table II is
// about.
func BenchmarkHAWCInference(b *testing.B) {
	l := lab(b)
	h := l.HAWC()
	sample := l.Split().Test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.PredictHuman(sample.Cloud)
	}
}

func BenchmarkHAWCInferenceInt8(b *testing.B) {
	l := lab(b)
	h := l.HAWCInt8()
	sample := l.Split().Test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.PredictHuman(sample.Cloud)
	}
}

// BenchmarkHAWCInferenceBatched measures per-cluster cost when a frame's
// clusters are classified in one forward pass (PredictHumans) instead of
// one pass each — the amortization the im2col/GEMM kernels are built for.
func BenchmarkHAWCInferenceBatched(b *testing.B) {
	l := lab(b)
	test := l.Split().Test
	variants := []struct {
		name string
		clf  models.BatchClassifier
	}{
		{"fp32", l.HAWC()},
		{"int8", l.HAWCInt8()},
	}
	for _, v := range variants {
		for _, batch := range []int{1, 8, 32} {
			clouds := make([]Cloud, batch)
			for i := range clouds {
				clouds[i] = test[i%len(test)].Cloud
			}
			b.Run(fmt.Sprintf("%s/batch=%d", v.name, batch), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = v.clf.PredictHumans(clouds)
				}
			})
		}
	}
}

func BenchmarkPointNetInference(b *testing.B) {
	l := lab(b)
	p := l.PointNet()
	sample := l.Split().Test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.PredictHuman(sample.Cloud)
	}
}

// BenchmarkPipelineFrame measures the full HAWC-CC frame latency end to
// end (ingest + cluster + classify), the Table V speed column.
func BenchmarkPipelineFrame(b *testing.B) {
	l := lab(b)
	p := counting.New(l.HAWC())
	f := benchFrame(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Count(f.Cloud)
	}
}

func BenchmarkHAWCTraining(b *testing.B) {
	g := dataset.NewGenerator(9)
	samples := g.Classification(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := models.NewHAWC()
		if err := h.Train(samples, models.TrainConfig{Epochs: 2, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkClustererAblation reports each clusterer's counting MAE as a
// custom benchmark metric alongside its cost — the Table IV ablation plus
// the parametric extensions (k-means, GMM) the paper rejects.
func BenchmarkClustererAblation(b *testing.B) {
	l := lab(b)
	clf := l.HAWC()
	frames := l.Frames()
	for _, c := range []counting.Clusterer{
		counting.NewAdaptiveClusterer(),
		counting.FixedEpsClusterer{Eps: 0.3},
		counting.FixedEpsClusterer{Eps: 0.5},
		counting.HierarchicalClusterer{},
		counting.KMeansClusterer{Seed: 1},
		counting.GMMClusterer{Seed: 1},
	} {
		b.Run(c.Name(), func(b *testing.B) {
			var mae float64
			for i := 0; i < b.N; i++ {
				p := counting.New(clf)
				p.Clusterer = c
				ev, err := counting.Evaluate(p, frames)
				if err != nil {
					b.Fatal(err)
				}
				mae = ev.MAE
			}
			b.ReportMetric(mae, "MAE")
		})
	}
}

// BenchmarkQuantizationAblation reports FP32 vs int8 accuracy and single-
// sample latency for HAWC — the quantization trade-off of Tables I/II.
func BenchmarkQuantizationAblation(b *testing.B) {
	l := lab(b)
	test := l.Split().Test
	variants := []struct {
		name string
		clf  models.Classifier
	}{
		{"fp32", l.HAWC()},
		{"int8", l.HAWCInt8()},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			acc := models.Evaluate(v.clf, test).Accuracy()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = v.clf.PredictHuman(test[i%len(test)].Cloud)
			}
			b.ReportMetric(acc*100, "acc%")
		})
	}
}

// BenchmarkParallelFrames measures frame-pipeline throughput at several
// worker counts — the measurement behind BENCH_parallel.json. Sub-
// benchmark names carry the worker count so CI runs can diff scaling.
func BenchmarkParallelFrames(b *testing.B) {
	l := lab(b)
	p := counting.New(l.HAWC())
	frames := l.Frames()
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev, err := counting.EvaluateParallel(p, frames, workers)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(ev.MAE, "MAE")
			}
		})
	}
}

// BenchmarkCountWorkers measures one frame's cluster-level fan-out: the
// latency knob a pole node turns when a single frame must finish fast.
func BenchmarkCountWorkers(b *testing.B) {
	l := lab(b)
	p := counting.New(l.HAWC())
	frame := l.Frames()[0].Cloud
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = p.CountWorkers(frame, workers)
			}
		})
	}
}
