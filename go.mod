module hawccc

go 1.22
