// Command hawcbench regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	hawcbench -exp table1,table5 -preset standard
//	hawcbench -exp all -preset quick
//
// Experiments: table1 table2 table3 table4 table5 table6 fig4 fig6 fig8
// (combined 8a+8b; fig8a/fig8b run the individual variants) fig9 fig10
// fig11 parallel kernels stream cluster geom fleet history offload api
// thermal, or "all". Presets: quick, standard, full.
//
// The parallel experiment sweeps frame-level worker counts and, with
// -parallel-out, writes the machine-readable BENCH_parallel.json consumed
// by the CI bench-smoke job. The kernels experiment sweeps the inference
// kernel paths (naive scalar loops vs im2col/GEMM, float vs int8) over
// batch sizes 1/8/32 and, with -kernels-out, writes BENCH_kernels.json.
// The stream experiment compares the staged streaming scheduler against
// the frame-at-a-time loop per worker count and, with -stream-out,
// writes BENCH_stream.json. The cluster experiment sweeps the
// geometry-stage engines (voxel grid with one build per frame vs the
// per-sub-pass k-d tree path) over crowd density × clutter and, with
// -cluster-out, writes BENCH_cluster.json with per-row label-equivalence
// asserted. The geom experiment A/Bs the structure-of-arrays geometry
// stage with the SIMD distance kernels against the scalar
// array-of-structs path over crowd density and, with -geom-out, writes
// BENCH_geom.json with exact label equivalence asserted per frame. The
// fleet experiment stands up the campus backend per pole
// count (10/100/1k/10k), streams synthetic reports from a multiplexed
// fleet while dashboard query workers hammer the snapshot-served HTTP
// query API, and, with -fleet-out, writes BENCH_fleet.json (reports/sec,
// query QPS, p99 ingest and query latency, report-conservation check).
// The history experiment benchmarks the FTDC-style time-series store:
// a store-level ingest sweep at 1k/10k poles (appends/sec, bytes/sample
// and compression vs naive 16-byte float64 rows, conservation), a
// bit-exact raw round-trip check, and an end-to-end replay where a
// history-enabled backend ingests fleet reports while scaled query
// workers mix /api/history reads into the dashboard load; -history-out
// writes BENCH_history.json for the CI bench-history gates. The offload
// experiment measures the adaptive edge/cloud classify offload in three
// phases — the quantized cluster transport (bytes/frame vs float32,
// dequantization error vs the tolerance bound, label agreement), an
// edge-only vs forced-offload pole race through a live backend at
// induced edge saturation, and a deterministic thermal ramp through the
// adaptive hysteresis controller; -offload-out writes BENCH_offload.json
// for the CI bench-offload gates. The api experiment A/Bs the
// snapshot-keyed pre-serialized response cache against the per-request
// encode path over the cacheable query endpoints at 1k/10k poles,
// asserts the bodies byte-identical, and runs an HTTP phase with
// conditional (If-None-Match) dashboard queries under fleet report
// load; -api-out writes BENCH_api.json for the CI bench-api gates. The
// thermal experiment rederives the Figure 10 temperature analysis from
// history store reads (raw zip + 24h downsampled daily maxima) and
// asserts it matches the in-memory telemetry path bit for bit.
//
// SIGINT/SIGTERM stop the run between experiments: the current
// experiment finishes, its output (and any requested JSON artifact
// already produced) is flushed, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hawccc/internal/experiments"
	"hawccc/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hawcbench:", err)
		os.Exit(1)
	}
}

func run() error {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (table1..table6, fig4, fig6, fig8a, fig8b, fig9, fig10, fig11, parallel, kernels, stream, cluster, geom, fleet, history, offload, api, thermal, all)")
	parallelOut := flag.String("parallel-out", "", "write the parallel sweep as JSON to this path (e.g. BENCH_parallel.json)")
	kernelsOut := flag.String("kernels-out", "", "write the kernels sweep as JSON to this path (e.g. BENCH_kernels.json)")
	streamOut := flag.String("stream-out", "", "write the stream-vs-loop sweep as JSON to this path (e.g. BENCH_stream.json)")
	clusterOut := flag.String("cluster-out", "", "write the cluster-engine sweep as JSON to this path (e.g. BENCH_cluster.json)")
	geomOut := flag.String("geom-out", "", "write the geometry-stage SIMD sweep as JSON to this path (e.g. BENCH_geom.json)")
	fleetOut := flag.String("fleet-out", "", "write the fleet-scale backend sweep as JSON to this path (e.g. BENCH_fleet.json)")
	historyOut := flag.String("history-out", "", "write the history-store benchmark as JSON to this path (e.g. BENCH_history.json)")
	offloadOut := flag.String("offload-out", "", "write the edge/cloud offload benchmark as JSON to this path (e.g. BENCH_offload.json)")
	apiOut := flag.String("api-out", "", "write the query-serving cache benchmark as JSON to this path (e.g. BENCH_api.json)")
	preset := flag.String("preset", "standard", "dataset/training scale: quick, standard, full")
	seed := flag.Int64("seed", 0, "override the preset's random seed")
	pnEpochs := flag.Int("pn-epochs", 0, "override the preset's PointNet training epochs")
	hawcEpochs := flag.Int("hawc-epochs", 0, "override the preset's HAWC training epochs")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address while experiments run (empty = off)")
	verbose := flag.Bool("v", true, "print progress")
	flag.Parse()

	var cfg experiments.Config
	switch *preset {
	case "quick":
		cfg = experiments.Quick()
	case "standard":
		cfg = experiments.Standard()
	case "full":
		cfg = experiments.Full()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *pnEpochs > 0 {
		cfg.PointNetEpochs = *pnEpochs
	}
	if *hawcEpochs > 0 {
		cfg.HAWCEpochs = *hawcEpochs
	}

	lab := experiments.NewLab(cfg)
	if *verbose {
		lab.Log = os.Stderr
	}
	if *metricsAddr != "" {
		// The bench pipelines register their stage histograms here, so a
		// profiler can watch the sweep live (and grab pprof profiles of it).
		lab.Obs = obs.NewRegistry()
		ms, err := obs.Serve(*metricsAddr, lab.Obs)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Fprintln(os.Stderr, "metrics on", ms.URL())
	}

	// SIGINT/SIGTERM finish the experiment in flight, then skip the rest
	// so artifacts flush and the process exits cleanly.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	wanted := map[string]bool{}
	for _, id := range strings.Split(*expFlag, ",") {
		wanted[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := wanted["all"]
	runIt := func(id string) bool { return ctx.Err() == nil && (all || wanted[id]) }

	start := time.Now()
	header := func(title string) {
		fmt.Printf("\n================ %s ================\n", title)
	}

	if runIt("table1") {
		header("Table I — single-person detection accuracy")
		fmt.Print(experiments.FormatTableI(experiments.TableI(lab)))
	}
	if runIt("table2") {
		header("Table II — edge inference time (device model)")
		fmt.Print(experiments.FormatTableII(experiments.TableII(lab)))
	}
	if runIt("table3") {
		header("Table III — up-sampling ablation")
		fmt.Print(experiments.FormatTableIII(experiments.TableIII(lab)))
	}
	if runIt("table4") {
		header("Table IV — clustering ablation")
		fmt.Print(experiments.FormatTableIV(experiments.TableIV(lab)))
	}
	if runIt("table5") {
		header("Table V — crowd counting accuracy & speed")
		fmt.Print(experiments.FormatTableV(experiments.TableV(lab)))
	}
	if runIt("table6") {
		header("Table VI — scalability (synthetic high density)")
		fmt.Print(experiments.FormatTableVI(experiments.TableVI(lab)))
	}
	if runIt("fig4") {
		header("Figure 4 — adaptive ε diagnostics")
		r := experiments.Figure4(lab)
		fmt.Printf("sample capture: %d points, elbow at index %d → ε = %.4f\n",
			len(r.Curve), r.ElbowIndex, r.ElbowEps)
		fmt.Printf("optimal ε over dataset: min %.4f, max %.4f, mode ≈ %.3f\n",
			r.EpsMin, r.EpsMax, r.EpsMode)
		fmt.Println("ε histogram:")
		fmt.Print(experiments.FormatHistogramASCII(r.EpsHistogram, 40))
	}
	if runIt("fig6") {
		header("Figure 6 — Human vs Object coordinate histograms")
		r := experiments.Figure6(lab)
		for axis, name := range []string{"x", "y", "z"} {
			fmt.Printf("--- %s axis, Human ---\n%s", name, experiments.FormatHistogramASCII(r.Human[axis], 30))
			fmt.Printf("--- %s axis, Object ---\n%s", name, experiments.FormatHistogramASCII(r.Object[axis], 30))
		}
	}
	if runIt("fig8") {
		header("Figure 8 — training curves (a) and data efficiency (b)")
		fractions := []float64{1.0, 0.1, 0.01, 0.001}
		r := experiments.Figure8(lab, fractions)
		fmt.Println("(a) test accuracy per epoch:")
		for _, c := range r.Curves {
			fmt.Printf("%-12s", c.Model)
			for _, a := range c.Acc {
				fmt.Printf(" %.3f", a)
			}
			fmt.Println()
		}
		fmt.Println("(b) accuracy vs training fraction:")
		fmt.Printf("%-12s", "fraction")
		for _, f := range fractions {
			fmt.Printf(" %8.3f%%", f*100)
		}
		fmt.Println()
		for _, fr := range r.Fractions {
			fmt.Printf("%-12s", fr.Model)
			for _, a := range fr.Acc {
				fmt.Printf(" %9.3f", a)
			}
			fmt.Println()
		}
	}
	if ctx.Err() == nil && wanted["fig8a"] { // explicit only; "all" runs the combined fig8
		header("Figure 8a — test accuracy per training epoch")
		for _, r := range experiments.Figure8a(lab) {
			fmt.Printf("%-12s", r.Model)
			for _, a := range r.Acc {
				fmt.Printf(" %.3f", a)
			}
			fmt.Println()
		}
	}
	if ctx.Err() == nil && wanted["fig8b"] { // explicit only; "all" runs the combined fig8
		header("Figure 8b — accuracy vs training-data fraction")
		fmt.Printf("%-12s", "fraction")
		for _, f := range experiments.Figure8bFractions {
			fmt.Printf(" %8.3f%%", f*100)
		}
		fmt.Println()
		for _, r := range experiments.Figure8b(lab) {
			fmt.Printf("%-12s", r.Model)
			for _, a := range r.Acc {
				fmt.Printf(" %9.3f", a)
			}
			fmt.Println()
		}
	}
	if runIt("fig9") {
		header("Figure 9 — projection ablation")
		fmt.Printf("%-6s %10s %8s %8s\n", "Proj", "Acc(%)", "MAE", "MSE")
		for _, r := range experiments.Figure9(lab) {
			fmt.Printf("%-6s %10.2f %8.2f %8.2f\n", r.Projection, r.Acc*100, r.MAE, r.MSE)
		}
	}
	if runIt("fig10") {
		header("Figure 10 — pole temperature analysis")
		r := experiments.Figure10()
		fmt.Printf("readings: %d over %d days\n", len(r.Readings), len(r.DailyMax))
		fmt.Printf("pole temperature: max %.2f°C  min %.2f°C  mean %.2f°C\n",
			r.Stats.Max, r.Stats.Min, r.Stats.Mean)
		fmt.Printf("pole−weather delta: %.1f°C at peak, %.1f°C in cool hours\n",
			r.Stats.PeakDelta, r.Stats.CoolDelta)
		fmt.Printf("hours above the Coral's 50°C rating: %.1f\n", r.Stats.HoursAboveRated)
		fmt.Print("daily maxima:")
		for _, m := range r.DailyMax {
			fmt.Printf(" %.1f", m)
		}
		fmt.Println()
	}
	if runIt("parallel") {
		header("Parallel — frame-pipeline throughput sweep")
		r := experiments.ParallelBench(lab)
		fmt.Print(experiments.FormatParallel(r))
		if *parallelOut != "" {
			f, err := os.Create(*parallelOut)
			if err != nil {
				return fmt.Errorf("parallel-out: %w", err)
			}
			if err := experiments.WriteParallelJSON(f, r); err != nil {
				f.Close()
				return fmt.Errorf("parallel-out: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("parallel-out: %w", err)
			}
			fmt.Printf("wrote %s\n", *parallelOut)
		}
	}
	if runIt("kernels") {
		header("Kernels — inference kernel path sweep")
		r := experiments.KernelsBench(lab)
		fmt.Print(experiments.FormatKernels(r))
		if *kernelsOut != "" {
			f, err := os.Create(*kernelsOut)
			if err != nil {
				return fmt.Errorf("kernels-out: %w", err)
			}
			if err := experiments.WriteKernelsJSON(f, r); err != nil {
				f.Close()
				return fmt.Errorf("kernels-out: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("kernels-out: %w", err)
			}
			fmt.Printf("wrote %s\n", *kernelsOut)
		}
	}
	if runIt("stream") {
		header("Stream — staged scheduler vs frame-at-a-time loop")
		r := experiments.StreamBench(lab)
		fmt.Print(experiments.FormatStream(r))
		if *streamOut != "" {
			f, err := os.Create(*streamOut)
			if err != nil {
				return fmt.Errorf("stream-out: %w", err)
			}
			if err := experiments.WriteStreamJSON(f, r); err != nil {
				f.Close()
				return fmt.Errorf("stream-out: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("stream-out: %w", err)
			}
			fmt.Printf("wrote %s\n", *streamOut)
		}
	}
	if runIt("cluster") {
		header("Cluster — geometry-stage engine sweep (grid vs kdtree)")
		r := experiments.ClusterBench(lab)
		fmt.Print(experiments.FormatCluster(r))
		if *clusterOut != "" {
			f, err := os.Create(*clusterOut)
			if err != nil {
				return fmt.Errorf("cluster-out: %w", err)
			}
			if err := experiments.WriteClusterJSON(f, r); err != nil {
				f.Close()
				return fmt.Errorf("cluster-out: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("cluster-out: %w", err)
			}
			fmt.Printf("wrote %s\n", *clusterOut)
		}
	}
	if runIt("geom") {
		header("Geom — SoA + SIMD geometry stage vs scalar baseline")
		r := experiments.GeomBench(lab)
		fmt.Print(experiments.FormatGeom(r))
		if *geomOut != "" {
			f, err := os.Create(*geomOut)
			if err != nil {
				return fmt.Errorf("geom-out: %w", err)
			}
			if err := experiments.WriteGeomJSON(f, r); err != nil {
				f.Close()
				return fmt.Errorf("geom-out: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("geom-out: %w", err)
			}
			fmt.Printf("wrote %s\n", *geomOut)
		}
	}
	if runIt("fleet") {
		header("Fleet — sharded backend + query API at 10/100/1k/10k poles")
		r := experiments.FleetBench(lab)
		fmt.Print(experiments.FormatFleet(r))
		if *fleetOut != "" {
			f, err := os.Create(*fleetOut)
			if err != nil {
				return fmt.Errorf("fleet-out: %w", err)
			}
			if err := experiments.WriteFleetJSON(f, r); err != nil {
				f.Close()
				return fmt.Errorf("fleet-out: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("fleet-out: %w", err)
			}
			fmt.Printf("wrote %s\n", *fleetOut)
		}
	}
	if runIt("history") {
		header("History — FTDC-style time-series store: ingest, compression, /api/history p99")
		r := experiments.HistoryBench(lab)
		fmt.Print(experiments.FormatHistory(r))
		if *historyOut != "" {
			f, err := os.Create(*historyOut)
			if err != nil {
				return fmt.Errorf("history-out: %w", err)
			}
			if err := experiments.WriteHistoryJSON(f, r); err != nil {
				f.Close()
				return fmt.Errorf("history-out: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("history-out: %w", err)
			}
			fmt.Printf("wrote %s\n", *historyOut)
		}
	}
	if runIt("offload") {
		header("Offload — adaptive edge/cloud classify offload over the quantized wire")
		r := experiments.OffloadBench(lab)
		fmt.Print(experiments.FormatOffload(r))
		if *offloadOut != "" {
			f, err := os.Create(*offloadOut)
			if err != nil {
				return fmt.Errorf("offload-out: %w", err)
			}
			if err := experiments.WriteOffloadJSON(f, r); err != nil {
				f.Close()
				return fmt.Errorf("offload-out: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("offload-out: %w", err)
			}
			fmt.Printf("wrote %s\n", *offloadOut)
		}
	}
	if runIt("api") {
		header("Api — pre-serialized response cache vs per-request encode")
		r := experiments.ApiBench(lab)
		fmt.Print(experiments.FormatApi(r))
		if *apiOut != "" {
			f, err := os.Create(*apiOut)
			if err != nil {
				return fmt.Errorf("api-out: %w", err)
			}
			if err := experiments.WriteApiJSON(f, r); err != nil {
				f.Close()
				return fmt.Errorf("api-out: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("api-out: %w", err)
			}
			fmt.Printf("wrote %s\n", *apiOut)
		}
	}
	if runIt("thermal") {
		header("Thermal — Figure 10 rederived from the history store")
		fmt.Print(experiments.FormatThermal(experiments.ThermalBench(lab)))
	}
	if runIt("fig11") {
		header("Figure 11 — density level visualization")
		for _, r := range experiments.Figure11(lab) {
			fmt.Printf("--- %d pedestrians: %d points ---\n", r.Pedestrians, r.Points)
			fmt.Println("x-offset distribution:")
			fmt.Print(experiments.FormatHistogramASCII(r.OffsetHistX, 30))
		}
	}

	if ctx.Err() != nil {
		fmt.Printf("\ninterrupted after %v — remaining experiments skipped\n",
			time.Since(start).Round(time.Second))
		return nil
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Second))
	return nil
}
