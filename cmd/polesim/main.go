// Command polesim runs a multi-pole smart campus over loopback TCP: it
// trains one HAWC model, starts the campus backend, and launches N pole
// nodes that scan simulated walkways, count on the edge, and stream
// reports and telemetry upstream (the Figure 1 deployment).
//
//	polesim -poles 3 -frames 10 -crowding-limit 8
//
// With -metrics-addr the whole campus exposes one Prometheus /metrics
// endpoint plus net/http/pprof: backend connection and alert counters,
// per-pole report counters and last-seen gauges, pipeline stage
// histograms, wire byte counts, and report round-trip times.
// -metrics-dump scrapes that endpoint after the poles finish and writes
// the exposition text to a file, which is how CI asserts the series
// exist without racing a short-lived process.
//
// Each pole streams its frames straight from a per-pole dataset
// generator through the counting pipeline's staged scheduler — no frame
// set is materialized up front — so memory stays flat however long the
// run is. SIGINT/SIGTERM shut the campus down gracefully: poles drain,
// the snapshot prints, -metrics-dump still writes, and the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"hawccc/internal/backend"
	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/models"
	"hawccc/internal/obs"
	"hawccc/internal/pole"
	"hawccc/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "polesim:", err)
		os.Exit(1)
	}
}

func run() error {
	poles := flag.Int("poles", 3, "number of pole nodes")
	frames := flag.Int("frames", 8, "frames per pole")
	maxPeople := flag.Int("max-people", 6, "maximum pedestrians per frame")
	epochs := flag.Int("epochs", 10, "HAWC training epochs")
	perClass := flag.Int("train", 250, "training samples per class")
	crowding := flag.Int("crowding-limit", 6, "backend crowding alert threshold (0 = off)")
	interval := flag.Duration("interval", 0, "pacing between frames (0 = as fast as possible)")
	seed := flag.Int64("seed", 7, "random seed")
	reconnects := flag.Int("reconnects", 3, "re-dial attempts per pole when the backend connection drops (0 = fail fast)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9100; empty = off)")
	metricsDump := flag.String("metrics-dump", "", "after the run, scrape /metrics and write the exposition text to this file (implies -metrics-addr 127.0.0.1:0 if unset)")
	flag.Parse()

	// One mutex serializes every diagnostic line the simulator itself
	// emits; backend and pole internals each serialize their own Logf, but
	// without this their streams could still interleave on stderr.
	var logMu sync.Mutex
	logf := func(f string, a ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(os.Stderr, f+"\n", a...)
	}

	var reg *obs.Registry
	var ms *obs.MetricsServer
	if *metricsAddr == "" && *metricsDump != "" {
		*metricsAddr = "127.0.0.1:0"
	}
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		var err error
		ms, err = obs.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Println("metrics on", ms.URL())
	}

	fmt.Printf("training HAWC on %d samples/class (%d epochs)...\n", *perClass, *epochs)
	g := dataset.NewGenerator(*seed)
	clf := models.NewHAWC()
	if err := clf.Train(g.Classification(*perClass), models.TrainConfig{Epochs: *epochs, Seed: *seed}); err != nil {
		return err
	}

	srv, err := backend.Listen(backend.Config{
		Addr:          "127.0.0.1:0",
		CrowdingLimit: *crowding,
		OverheatLimit: 50,
		Obs:           reg,
		Logf:          func(f string, a ...any) { logf("[backend] "+f, a...) },
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Println("backend listening on", srv.Addr())

	// SIGINT/SIGTERM cancel every pole's Run: streams drain, connections
	// close, and the run falls through to the snapshot and metrics dump.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	readings := telemetry.Simulate(telemetry.SummerConfig())
	start := time.Now()
	var wg sync.WaitGroup
	for id := 1; id <= *poles; id++ {
		// Each pole owns a seeded generator and streams frames from it on
		// demand — the staged scheduler pulls as capacity frees up, so no
		// pole ever materializes its whole frame set.
		src := dataset.NewGenerator(*seed+int64(id)).CrowdSource(*frames, 1, *maxPeople, 2)
		// All poles share the registry: pipeline stage histograms aggregate
		// campus-wide, while pole-level series carry a pole="<id>" label.
		node, err := pole.Dial(pole.Config{
			PoleID:        uint32(id),
			Location:      fmt.Sprintf("walkway-%d", id),
			BackendAddr:   srv.Addr(),
			Pipeline:      counting.New(clf).Instrument(reg),
			Source:        src,
			FrameInterval: *interval,
			Telemetry:     readings[400*id:],
			MaxReconnects: *reconnects,
			Obs:           reg,
			Logf:          func(f string, a ...any) { logf("[pole] "+f, a...) },
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			n, err := node.Run(ctx)
			if err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "pole %d: %v\n", id, err)
			}
			fmt.Printf("pole %d done: %d frames, %d alerts received\n", id, n, len(node.Alerts()))
		}(id)
	}
	wg.Wait()

	if ctx.Err() != nil {
		fmt.Printf("\ninterrupted after %v — campus shut down gracefully\n", time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("\nall poles finished in %v\n", time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("campus snapshot:")
	for _, p := range srv.Snapshot() {
		fmt.Printf("  pole %d (%s): reports %d, last %d, peak %d, total %d, maxTemp %.1f°C\n",
			p.PoleID, p.Location, p.Reports, p.LastCount, p.PeakCount, p.TotalCount, p.MaxTemp)
	}
	fmt.Printf("alerts: %d, campus count: %d\n", len(srv.Alerts()), srv.CampusCount())

	if *metricsDump != "" {
		if err := dumpMetrics(ms.URL(), *metricsDump); err != nil {
			return err
		}
		fmt.Println("wrote", *metricsDump)
	}
	return nil
}

// dumpMetrics scrapes the simulator's own /metrics endpoint and writes the
// exposition body to path, exactly as an external Prometheus would see it.
func dumpMetrics(url, path string) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("metrics-dump: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("metrics-dump: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics-dump: scrape returned %s", resp.Status)
	}
	return os.WriteFile(path, body, 0o644)
}
