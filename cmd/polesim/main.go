// Command polesim runs a multi-pole smart campus over loopback TCP: it
// trains one HAWC model, starts the campus backend, and launches N pole
// nodes that scan simulated walkways, count on the edge, and stream
// reports and telemetry upstream (the Figure 1 deployment).
//
//	polesim -poles 3 -frames 10 -crowding-limit 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"hawccc/internal/backend"
	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/models"
	"hawccc/internal/pole"
	"hawccc/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "polesim:", err)
		os.Exit(1)
	}
}

func run() error {
	poles := flag.Int("poles", 3, "number of pole nodes")
	frames := flag.Int("frames", 8, "frames per pole")
	maxPeople := flag.Int("max-people", 6, "maximum pedestrians per frame")
	epochs := flag.Int("epochs", 10, "HAWC training epochs")
	perClass := flag.Int("train", 250, "training samples per class")
	crowding := flag.Int("crowding-limit", 6, "backend crowding alert threshold (0 = off)")
	interval := flag.Duration("interval", 0, "pacing between frames (0 = as fast as possible)")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	fmt.Printf("training HAWC on %d samples/class (%d epochs)...\n", *perClass, *epochs)
	g := dataset.NewGenerator(*seed)
	clf := models.NewHAWC()
	if err := clf.Train(g.Classification(*perClass), models.TrainConfig{Epochs: *epochs, Seed: *seed}); err != nil {
		return err
	}

	srv, err := backend.Listen(backend.Config{
		Addr:          "127.0.0.1:0",
		CrowdingLimit: *crowding,
		OverheatLimit: 50,
		Logf:          func(f string, a ...any) { fmt.Fprintf(os.Stderr, "[backend] "+f+"\n", a...) },
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Println("backend listening on", srv.Addr())

	readings := telemetry.Simulate(telemetry.SummerConfig())
	start := time.Now()
	var wg sync.WaitGroup
	for id := 1; id <= *poles; id++ {
		poleFrames := g.CrowdFrames(*frames, 1, *maxPeople, 2)
		node, err := pole.Dial(pole.Config{
			PoleID:        uint32(id),
			Location:      fmt.Sprintf("walkway-%d", id),
			BackendAddr:   srv.Addr(),
			Pipeline:      counting.New(clf),
			Source:        &pole.SliceSource{Frames: poleFrames},
			FrameInterval: *interval,
			Telemetry:     readings[400*id:],
			Logf:          func(f string, a ...any) { fmt.Fprintf(os.Stderr, "[pole] "+f+"\n", a...) },
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			n, err := node.Run(context.Background())
			if err != nil {
				fmt.Fprintf(os.Stderr, "pole %d: %v\n", id, err)
			}
			fmt.Printf("pole %d done: %d frames, %d alerts received\n", id, n, len(node.Alerts()))
		}(id)
	}
	wg.Wait()

	fmt.Printf("\nall poles finished in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("campus snapshot:")
	for _, p := range srv.Snapshot() {
		fmt.Printf("  pole %d (%s): reports %d, last %d, peak %d, total %d, maxTemp %.1f°C\n",
			p.PoleID, p.Location, p.Reports, p.LastCount, p.PeakCount, p.TotalCount, p.MaxTemp)
	}
	fmt.Printf("alerts: %d, campus count: %d\n", len(srv.Alerts()), srv.CampusCount())
	return nil
}
