// Command polesim runs a multi-pole smart campus over loopback TCP: it
// trains one HAWC model, starts the campus backend, and launches N pole
// nodes that scan simulated walkways, count on the edge, and stream
// reports and telemetry upstream (the Figure 1 deployment).
//
//	polesim -poles 3 -frames 10 -crowding-limit 8
//
// -offload selects the edge/cloud classify split: "off" (default)
// counts entirely on the edge, "forced" ships every frame's clusters to
// the backend's offload service over the quantized wire transport, and
// "adaptive" lets each pole's hysteresis controller shed classification
// only while its classify stage is saturated or its compartment runs
// hot. The shared HAWC model is trained first and handed to the backend
// as its offload classifier, so counts are identical wherever a cluster
// is classified.
//
// With -synthetic it becomes a fleet-scale load generator instead: no
// model is trained and no LiDAR pipeline runs — -poles simulated poles
// (10000 works) stream synthetic count reports over a bounded number of
// multiplexed connections, optionally with per-connection staggered
// phases (-stagger) and pacing (-interval), while -query-workers
// dashboard clients hammer the snapshot-served campus query API. The
// run prints reports/sec, ack-RTT percentiles, and query latency — the
// same measurements the hawcbench fleet experiment records.
//
//	polesim -synthetic -poles 10000 -reports 5 -query-workers 4
//
// With -history every count report and telemetry reading is also
// captured into the FTDC-style time-series store (internal/tsdb) and
// served back through /api/history; -history-dir streams sealed chunks
// to rotated segment files, and -history-percent aims that share of the
// synthetic query load at the history endpoint (both imply -history).
//
// Poles are assigned round-robin to -zones campus zones; the backend's
// query API (served on -api-addr, and mounted at /api/ on the metrics
// listener when -metrics-addr is set) rolls counts up per pole, per
// zone, and campus-wide, with top-K busiest poles.
//
// With -metrics-addr the whole campus exposes one Prometheus /metrics
// endpoint plus net/http/pprof: backend connection and alert counters,
// per-pole report counters and last-seen gauges, pipeline stage
// histograms, wire byte counts, and report round-trip times.
// -metrics-dump scrapes that endpoint after the poles finish and writes
// the exposition text to a file, which is how CI asserts the series
// exist without racing a short-lived process.
//
// Each pole streams its frames straight from a per-pole dataset
// generator through the counting pipeline's staged scheduler — no frame
// set is materialized up front — so memory stays flat however long the
// run is. SIGINT/SIGTERM shut the campus down gracefully: poles drain,
// the snapshot prints, -metrics-dump still writes, and the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"hawccc/internal/backend"
	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/fleet"
	"hawccc/internal/models"
	"hawccc/internal/obs"
	"hawccc/internal/pole"
	"hawccc/internal/telemetry"
	"hawccc/internal/tsdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "polesim:", err)
		os.Exit(1)
	}
}

func run() error {
	poles := flag.Int("poles", 3, "number of pole nodes (simulated poles in -synthetic mode)")
	frames := flag.Int("frames", 8, "frames per pole")
	maxPeople := flag.Int("max-people", 6, "maximum pedestrians per frame")
	epochs := flag.Int("epochs", 10, "HAWC training epochs")
	perClass := flag.Int("train", 250, "training samples per class")
	crowding := flag.Int("crowding-limit", 6, "backend crowding alert threshold (0 = off)")
	interval := flag.Duration("interval", 0, "pacing between frames (per report round in -synthetic mode; 0 = as fast as possible)")
	seed := flag.Int64("seed", 7, "random seed")
	reconnects := flag.Int("reconnects", 3, "re-dial attempts per pole when the backend connection drops (0 = fail fast)")
	zones := flag.Int("zones", 4, "campus zones poles are assigned to round-robin")
	apiAddr := flag.String("api-addr", "", "serve the campus query API on this address (e.g. 127.0.0.1:8080; empty = off unless -query-workers needs it)")
	synthetic := flag.Bool("synthetic", false, "fleet load-generator mode: skip training and the LiDAR pipeline, stream synthetic reports")
	reports := flag.Int("reports", 50, "reports per simulated pole in -synthetic mode")
	conns := flag.Int("conns", 0, "TCP connections the synthetic fleet is multiplexed over (0 = min(poles, 64))")
	stagger := flag.Duration("stagger", 0, "maximum random initial phase offset per connection in -synthetic mode")
	queryWorkers := flag.Int("query-workers", 0, "concurrent query-API clients during a -synthetic run (0 = off)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9100; empty = off)")
	metricsDump := flag.String("metrics-dump", "", "after the run, scrape /metrics and write the exposition text to this file (implies -metrics-addr 127.0.0.1:0 if unset)")
	history := flag.Bool("history", false, "capture per-pole history in the FTDC-style time-series store and serve /api/history")
	historyDir := flag.String("history-dir", "", "stream sealed history chunks to segment files in this directory (implies -history)")
	historyPercent := flag.Int("history-percent", 0, "percent of -query-workers load aimed at /api/history in -synthetic mode (implies -history)")
	offloadFlag := flag.String("offload", "off", "edge/cloud classify offload mode: off, forced, or adaptive")
	conditional := flag.Int("conditional", 0, "percent of -query-workers snapshot queries sent conditionally (If-None-Match revalidation; unchanged snapshots answer 304)")
	flag.Parse()

	offload, err := counting.ParseOffloadMode(*offloadFlag)
	if err != nil {
		return err
	}
	if *synthetic && offload != counting.OffloadOff {
		return fmt.Errorf("-offload needs the full LiDAR pipeline; drop -synthetic")
	}

	// One mutex serializes every diagnostic line the simulator itself
	// emits; backend and pole internals each serialize their own Logf, but
	// without this their streams could still interleave on stderr.
	var logMu sync.Mutex
	logf := func(f string, a ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(os.Stderr, f+"\n", a...)
	}

	var reg *obs.Registry
	if *metricsAddr == "" && *metricsDump != "" {
		*metricsAddr = "127.0.0.1:0"
	}
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}

	// The query API needs an address when query load is requested.
	if *apiAddr == "" && *queryWorkers > 0 {
		*apiAddr = "127.0.0.1:0"
	}

	if *historyDir != "" || *historyPercent > 0 {
		*history = true
	}
	var histCfg *tsdb.Config
	if *history {
		histCfg = &tsdb.Config{Dir: *historyDir}
	}

	// The campus model trains before the backend starts: the backend's
	// offload service classifies with the same trained HAWC the poles
	// run, which is what makes offloaded counts identical to edge ones.
	var clf *models.HAWC
	if !*synthetic {
		fmt.Printf("training HAWC on %d samples/class (%d epochs)...\n", *perClass, *epochs)
		clf = models.NewHAWC()
		if err := clf.Train(dataset.NewGenerator(*seed).Classification(*perClass),
			models.TrainConfig{Epochs: *epochs, Seed: *seed}); err != nil {
			return err
		}
	}
	var backendClf models.BatchClassifier
	if offload != counting.OffloadOff {
		backendClf = clf
	}

	srv, err := backend.Listen(backend.Config{
		Addr:          "127.0.0.1:0",
		APIAddr:       *apiAddr,
		CrowdingLimit: *crowding,
		OverheatLimit: 50,
		History:       histCfg,
		Classifier:    backendClf,
		Obs:           reg,
		Logf:          func(f string, a ...any) { logf("[backend] "+f, a...) },
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Println("backend listening on", srv.Addr())
	if srv.APIAddr() != "" {
		fmt.Println("query API on http://" + srv.APIAddr() + "/api/campus")
	}

	var ms *obs.MetricsServer
	if *metricsAddr != "" {
		// The query API rides the metrics listener too, so one diagnostics
		// port serves /metrics, /debug/pprof, and /api/....
		ms, err = obs.ServeMounts(*metricsAddr, reg, map[string]http.Handler{"/api/": srv.APIHandler()})
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Println("metrics on", ms.URL())
	}

	// SIGINT/SIGTERM cancel every pole's Run: streams drain, connections
	// close, and the run falls through to the snapshot and metrics dump.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *synthetic {
		if err := runSynthetic(ctx, srv, syntheticConfig{
			poles: *poles, reports: *reports, conns: *conns,
			interval: *interval, stagger: *stagger,
			zones: *zones, seed: *seed, queryWorkers: *queryWorkers,
			historyPercent: *historyPercent, conditionalPercent: *conditional,
		}); err != nil {
			return err
		}
	} else {
		if err := runCampus(ctx, srv, reg, clf, campusConfig{
			poles: *poles, frames: *frames, maxPeople: *maxPeople,
			interval: *interval, seed: *seed, reconnects: *reconnects,
			zones: *zones, offload: offload,
		}, logf); err != nil {
			return err
		}
	}

	printSnapshot(srv)
	printHistory(srv)

	if *metricsDump != "" {
		if err := dumpMetrics(ms.URL(), *metricsDump); err != nil {
			return err
		}
		fmt.Println("wrote", *metricsDump)
	}
	return nil
}

type campusConfig struct {
	poles, frames, maxPeople, reconnects, zones int
	interval                                    time.Duration
	seed                                        int64
	offload                                     counting.OffloadMode
}

// runCampus is the full-pipeline mode: launch N pole nodes that scan,
// count (on the edge or, per -offload, through the backend's classify
// service), and report upstream with the already-trained campus model.
func runCampus(ctx context.Context, srv *backend.Server, reg *obs.Registry, clf *models.HAWC, cfg campusConfig, logf func(string, ...any)) error {
	if cfg.offload != counting.OffloadOff {
		fmt.Printf("offload mode: %s\n", cfg.offload)
	}
	readings := telemetry.Simulate(telemetry.SummerConfig())
	// Every pole runs the same trained weights as the backend, so they
	// all advertise one classifier version; compute the hash once rather
	// than per pole (it re-serializes the weights).
	ver := clf.ModelVersion()
	start := time.Now()
	var wg sync.WaitGroup
	for id := 1; id <= cfg.poles; id++ {
		// Each pole owns a seeded generator and streams frames from it on
		// demand — the staged scheduler pulls as capacity frees up, so no
		// pole ever materializes its whole frame set.
		src := dataset.NewGenerator(cfg.seed+int64(id)).CrowdSource(cfg.frames, 1, cfg.maxPeople, 2)
		// All poles share the registry: pipeline stage histograms aggregate
		// campus-wide, while pole-level series carry a pole="<id>" label.
		node, err := pole.Dial(pole.Config{
			PoleID:        uint32(id),
			Location:      fmt.Sprintf("walkway-%d", id),
			Zone:          fleet.ZoneName(uint32(id), cfg.zones),
			BackendAddr:   srv.Addr(),
			Pipeline:      counting.New(clf).Instrument(reg),
			Source:        src,
			FrameInterval: cfg.interval,
			Telemetry:     readings[400*id:],
			Offload:       counting.OffloadConfig{Mode: cfg.offload},
			ModelVersion:  ver,
			MaxReconnects: cfg.reconnects,
			Obs:           reg,
			Logf:          func(f string, a ...any) { logf("[pole] "+f, a...) },
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			n, err := node.Run(ctx)
			if err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "pole %d: %v\n", id, err)
			}
			fmt.Printf("pole %d done: %d frames, %d alerts received\n", id, n, len(node.Alerts()))
		}(id)
	}
	wg.Wait()

	if ctx.Err() != nil {
		fmt.Printf("\ninterrupted after %v — campus shut down gracefully\n", time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("\nall poles finished in %v\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

type syntheticConfig struct {
	poles, reports, conns, zones, queryWorkers int
	historyPercent, conditionalPercent         int
	interval, stagger                          time.Duration
	seed                                       int64
}

// runSynthetic is the load-generator mode: a multiplexed synthetic
// fleet plus optional dashboard query load, no LiDAR pipeline at all.
func runSynthetic(ctx context.Context, srv *backend.Server, cfg syntheticConfig) error {
	fmt.Printf("synthetic fleet: %d poles × %d reports (%d zones)\n", cfg.poles, cfg.reports, cfg.zones)

	qctx, stopQueries := context.WithCancel(ctx)
	defer stopQueries()
	queryDone := make(chan fleet.QueryResult, 1)
	if cfg.queryWorkers > 0 {
		go func() {
			queryDone <- fleet.Query(qctx, fleet.QueryConfig{
				BaseURL:            "http://" + srv.APIAddr(),
				Workers:            cfg.queryWorkers,
				Poles:              cfg.poles,
				Zones:              cfg.zones,
				HistoryPercent:     cfg.historyPercent,
				ConditionalPercent: cfg.conditionalPercent,
				Seed:               cfg.seed + 1,
			})
		}()
	}

	rep, err := fleet.Report(ctx, fleet.ReportConfig{
		Addr:           srv.Addr(),
		Poles:          cfg.poles,
		ReportsPerPole: cfg.reports,
		Conns:          cfg.conns,
		Interval:       cfg.interval,
		Stagger:        cfg.stagger,
		Zones:          cfg.zones,
		Seed:           cfg.seed,
	})
	stopQueries()
	if err != nil && ctx.Err() == nil {
		return err
	}

	fmt.Printf("\nreports: %d over %d conns in %v — %.0f reports/s, ack RTT p50 %.3fms p99 %.3fms, %d alerts\n",
		rep.Reports, rep.Conns, rep.Elapsed.Round(time.Millisecond),
		rep.ReportsPerSec, rep.AckRTT.P50Ms, rep.AckRTT.P99Ms, rep.Alerts)
	if cfg.queryWorkers > 0 {
		q := <-queryDone
		fmt.Printf("queries: %d from %d workers — %.0f QPS, p50 %.3fms p99 %.3fms, %d errors\n",
			q.Queries, q.Workers, q.QPS, q.Latency.P50Ms, q.Latency.P99Ms, q.Errors+q.NonOK)
		if q.NotModified > 0 {
			fmt.Printf("conditional revalidations answered 304: %d\n", q.NotModified)
		}
		if q.HistoryQueries > 0 {
			fmt.Printf("history queries: %d — p50 %.3fms p99 %.3fms\n",
				q.HistoryQueries, q.HistoryLatency.P50Ms, q.HistoryLatency.P99Ms)
		}
	}
	if ctx.Err() != nil {
		fmt.Println("interrupted — campus shut down gracefully")
	}
	return nil
}

// printSnapshot forces a fresh campus snapshot and prints the per-pole
// (small fleets), per-zone, and campus rollups.
func printSnapshot(srv *backend.Server) {
	snap := srv.RebuildSnapshot()
	fmt.Println("campus snapshot:")
	if len(snap.Poles) <= 16 {
		for _, p := range snap.Poles {
			fmt.Printf("  pole %d (%s, %s): reports %d, last %d, peak %d, total %d, maxTemp %.1f°C\n",
				p.PoleID, p.Location, p.Zone, p.Reports, p.LastCount, p.PeakCount, p.TotalCount, p.MaxTemp)
		}
	}
	for _, z := range snap.Zones {
		fmt.Printf("  zone %s: %d poles, count %d, reports %d, alerts %d\n",
			z.Zone, z.Poles, z.Count, z.Reports, z.Alerts)
	}
	fmt.Printf("campus: %d poles, count %d, reports %d, alerts %d (snapshot seq %d)\n",
		snap.Campus.Poles, snap.Campus.Count, snap.Campus.Reports, snap.Campus.Alerts, snap.Seq)
}

// printHistory summarizes the history store when -history enabled it.
func printHistory(srv *backend.Server) {
	st := srv.History()
	if st == nil {
		return
	}
	stats := st.Stats()
	fmt.Printf("history: %d series, %d samples captured, %.2f bytes/sample sealed (%.1fx vs 16-byte rows)\n",
		stats.Series, stats.Appended, stats.BytesPerSample, stats.CompressionVs16)
}

// dumpMetrics scrapes the simulator's own /metrics endpoint and writes the
// exposition body to path, exactly as an external Prometheus would see it.
func dumpMetrics(url, path string) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("metrics-dump: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("metrics-dump: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics-dump: scrape returned %s", resp.Status)
	}
	return os.WriteFile(path, body, 0o644)
}
