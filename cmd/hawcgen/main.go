// Command hawcgen generates and saves the synthetic LiDAR datasets so
// experiment runs can share identical data across processes.
//
//	hawcgen -kind classification -n 1200 -o train.hwcc
//	hawcgen -kind frames -n 200 -max-people 6 -o frames.hwcc
package main

import (
	"flag"
	"fmt"
	"os"

	"hawccc/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hawcgen:", err)
		os.Exit(1)
	}
}

func run() error {
	kind := flag.String("kind", "classification", "dataset kind: classification (single-person + object samples) or frames (multi-person captures)")
	n := flag.Int("n", 1000, "samples per class (classification) or frame count (frames)")
	seed := flag.Int64("seed", 42, "generator seed")
	minPeople := flag.Int("min-people", 1, "frames: minimum pedestrians per frame")
	maxPeople := flag.Int("max-people", 6, "frames: maximum pedestrians per frame")
	objects := flag.Int("objects", 2, "frames: objects per frame")
	hard := flag.Bool("hard-objects", false, "include human-confusable extension objects")
	out := flag.String("o", "", "output path (required)")
	flag.Parse()

	if *out == "" {
		return fmt.Errorf("-o is required")
	}
	g := dataset.NewGenerator(*seed)
	g.HardObjects = *hard

	switch *kind {
	case "classification":
		samples := g.Classification(*n)
		if err := dataset.SaveSamples(*out, samples); err != nil {
			return err
		}
		humans := 0
		points := 0
		for _, s := range samples {
			if s.Human {
				humans++
			}
			points += len(s.Cloud)
		}
		fmt.Printf("wrote %d samples (%d human, %d object, %d points, N_max %d) to %s\n",
			len(samples), humans, len(samples)-humans, points, dataset.MaxPoints(samples), *out)
	case "frames":
		frames := g.CrowdFrames(*n, *minPeople, *maxPeople, *objects)
		if err := dataset.SaveFrames(*out, frames); err != nil {
			return err
		}
		total := 0
		for _, f := range frames {
			total += f.Count
		}
		fmt.Printf("wrote %d frames (%d people total) to %s\n", len(frames), total, *out)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	return nil
}
