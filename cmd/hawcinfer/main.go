// Command hawcinfer loads a model saved by hawctrain and counts people in
// frames written by hawcgen, printing one line per frame.
//
//	hawcinfer -model model.hwcm -frames frames.hwcc
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/models"
	"hawccc/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hawcinfer:", err)
		os.Exit(1)
	}
}

func run() error {
	modelPath := flag.String("model", "", "model file written by hawctrain (required)")
	framesPath := flag.String("frames", "", "frames file written by hawcgen (required)")
	quantize := flag.Bool("int8", false, "quantize the model before inference (calibrates on the model's object pool)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address while counting (empty = off)")
	flag.Parse()

	if *modelPath == "" || *framesPath == "" {
		return fmt.Errorf("-model and -frames are required")
	}
	h, err := models.LoadHAWCFile(*modelPath)
	if err != nil {
		return err
	}
	frames, err := dataset.LoadFrames(*framesPath)
	if err != nil {
		return err
	}
	var clf models.Classifier = h
	if *quantize {
		calib := poolClouds(h)
		if len(calib) > 100 {
			calib = calib[:100]
		}
		q, err := h.Quantize(calib)
		if err != nil {
			return err
		}
		clf = q
	}

	p := counting.New(clf)
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		ms, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer ms.Close()
		p.Instrument(reg)
		fmt.Fprintln(os.Stderr, "metrics on", ms.URL())
	}
	var pred, truth []float64
	start := time.Now()
	for i, f := range frames {
		r := p.Count(f.Cloud)
		pred = append(pred, float64(r.Count))
		truth = append(truth, float64(f.Count))
		fmt.Printf("frame %3d: %3d people (truth %3d) in %6.2f ms\n",
			i, r.Count, f.Count, float64(r.Timing.Total().Microseconds())/1000)
	}
	elapsed := time.Since(start)
	ev := evaluation(pred, truth)
	fmt.Printf("\n%d frames in %v — MAE %.2f, MSE %.2f\n", len(frames), elapsed.Round(time.Millisecond), ev.mae, ev.mse)
	return nil
}

func poolClouds(h *models.HAWC) []dataset.Sample {
	// The saved model's pool doubles as a calibration source; clusters are
	// what the classifier sees at inference time.
	var out []dataset.Sample
	for _, c := range h.PoolClouds() {
		out = append(out, dataset.Sample{Cloud: c})
	}
	return out
}

type ev struct{ mae, mse float64 }

func evaluation(pred, truth []float64) ev {
	var sumAbs, sumSq float64
	for i := range pred {
		d := pred[i] - truth[i]
		if d < 0 {
			d = -d
		}
		sumAbs += d
		sumSq += d * d
	}
	n := float64(len(pred))
	if n == 0 {
		return ev{}
	}
	return ev{mae: sumAbs / n, mse: sumSq / n}
}
