// Command hawctrain trains a HAWC-CC counter and saves the full model
// (weights, projector, up-sampling pool) for later inference.
//
//	hawctrain -data train.hwcc -epochs 30 -o model.hwcm
//	hawctrain -generate 1200 -o model.hwcm       # synthesize data inline
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"hawccc/internal/dataset"
	"hawccc/internal/models"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hawctrain:", err)
		os.Exit(1)
	}
}

func run() error {
	dataPath := flag.String("data", "", "classification dataset written by hawcgen (mutually exclusive with -generate)")
	generate := flag.Int("generate", 0, "synthesize this many samples per class instead of loading")
	epochs := flag.Int("epochs", 30, "training epochs")
	seed := flag.Int64("seed", 1, "random seed")
	holdout := flag.Float64("holdout", 0.2, "fraction held out for the accuracy report")
	out := flag.String("o", "", "output model path (required)")
	flag.Parse()

	if *out == "" {
		return fmt.Errorf("-o is required")
	}
	var samples []dataset.Sample
	switch {
	case *dataPath != "" && *generate > 0:
		return fmt.Errorf("-data and -generate are mutually exclusive")
	case *dataPath != "":
		var err error
		samples, err = dataset.LoadSamples(*dataPath)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d samples from %s\n", len(samples), *dataPath)
	case *generate > 0:
		fmt.Printf("generating %d samples per class...\n", *generate)
		samples = dataset.NewGenerator(*seed).Classification(*generate)
	default:
		return fmt.Errorf("either -data or -generate is required")
	}

	split := dataset.TrainTestSplit(rand.New(rand.NewSource(*seed)), samples, 1-*holdout)
	fmt.Printf("training HAWC on %d samples (%d epochs)...\n", len(split.Train), *epochs)
	start := time.Now()
	h := models.NewHAWC()
	cfg := models.TrainConfig{Epochs: *epochs, Seed: *seed}
	cfg.Progress = func(e int) {
		if (e+1)%5 == 0 {
			fmt.Printf("  epoch %d/%d\n", e+1, *epochs)
		}
	}
	if err := h.Train(split.Train, cfg); err != nil {
		return err
	}
	fmt.Printf("trained in %v\n", time.Since(start).Round(time.Second))

	if len(split.Test) > 0 {
		conf := models.Evaluate(h, split.Test)
		fmt.Printf("holdout: %s\n", conf)
	}
	if err := models.SaveHAWCFile(*out, h); err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("saved model to %s (%d bytes)\n", *out, info.Size())
	return nil
}
