package hawccc

import (
	"bytes"
	"testing"
)

// trainSmall builds a small counter shared across tests.
func trainSmall(t *testing.T) (*Counter, []Sample) {
	t.Helper()
	train := GenerateTrainingData(1, 120)
	opts := DefaultTrainOptions()
	opts.Epochs = 6
	c, err := Train(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, train
}

func TestTrainAndCount(t *testing.T) {
	c, _ := trainSmall(t)
	frames := GenerateFrames(2, 4, 1, 3)
	for i, f := range frames {
		r := c.Count(f.Cloud)
		if r.Count < 0 || r.Count > f.Count+4 {
			t.Errorf("frame %d: count %d vs truth %d", i, r.Count, f.Count)
		}
		if r.Latency.Total() <= 0 {
			t.Error("no latency recorded")
		}
	}
}

func TestTrainProgressAndDefaults(t *testing.T) {
	train := GenerateTrainingData(2, 60)
	calls := 0
	_, err := Train(train, TrainOptions{Epochs: 2, Progress: func(int) { calls++ }})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("progress called %d times", calls)
	}
	if _, err := Train(nil, DefaultTrainOptions()); err == nil {
		t.Error("empty training data accepted")
	}
}

func TestQuantizeAndEvaluate(t *testing.T) {
	c, train := trainSmall(t)
	q, err := c.Quantize(train[:30])
	if err != nil {
		t.Fatal(err)
	}
	frames := GenerateFrames(3, 4, 1, 3)
	ev, err := c.Evaluate(frames)
	if err != nil {
		t.Fatal(err)
	}
	evQ, err := q.Evaluate(frames)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MSE < ev.MAE-1e-9 || evQ.MSE < evQ.MAE-1e-9 {
		t.Error("MSE must be at least MAE")
	}
	if _, err := c.Evaluate(nil); err == nil {
		t.Error("empty frames accepted")
	}
}

func TestClassifyClusterAndMetrics(t *testing.T) {
	c, train := trainSmall(t)
	// Classifier metrics on the training data must beat chance clearly.
	acc, p, r, f1 := c.EvaluateClassifier(train)
	if acc < 0.6 {
		t.Errorf("train accuracy %.3f", acc)
	}
	if p < 0 || p > 1 || r < 0 || r > 1 || f1 < 0 || f1 > 1 {
		t.Error("metrics out of range")
	}
	_ = c.ClassifyCluster(train[0].Cloud)
}

func TestSaveWeights(t *testing.T) {
	c, _ := trainSmall(t)
	var buf bytes.Buffer
	if err := c.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no weights written")
	}
}

func TestROIAndHelpers(t *testing.T) {
	xMin, xMax, yMin, yMax := ROI()
	if xMin != 12 || xMax != 35 || yMin != -2.5 || yMax != 2.5 {
		t.Errorf("ROI = %v %v %v %v", xMin, xMax, yMin, yMax)
	}
	if p := P(1, 2, 3); p.X != 1 || p.Y != 2 || p.Z != 3 {
		t.Error("P constructor")
	}
	if got := CountingAccuracy([]float64{244.1, 255.9}, []float64{250, 250}); got < 0.97 || got > 0.98 {
		t.Errorf("CountingAccuracy = %v", got)
	}
}
