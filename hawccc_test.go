package hawccc

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// trainSmall builds a small counter shared across tests.
func trainSmall(t *testing.T) (*Counter, []Sample) {
	t.Helper()
	train := GenerateTrainingData(1, 120)
	opts := DefaultTrainOptions()
	opts.Epochs = 6
	c, err := Train(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, train
}

func TestTrainAndCount(t *testing.T) {
	c, _ := trainSmall(t)
	frames := GenerateFrames(2, 4, 1, 3)
	for i, f := range frames {
		r := c.Count(f.Cloud)
		if r.Count < 0 || r.Count > f.Count+4 {
			t.Errorf("frame %d: count %d vs truth %d", i, r.Count, f.Count)
		}
		if r.Latency.Total() <= 0 {
			t.Error("no latency recorded")
		}
	}
}

func TestTrainProgressAndDefaults(t *testing.T) {
	train := GenerateTrainingData(2, 60)
	calls := 0
	_, err := Train(train, TrainOptions{Epochs: 2, Progress: func(int) { calls++ }})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("progress called %d times", calls)
	}
	if _, err := Train(nil, DefaultTrainOptions()); err == nil {
		t.Error("empty training data accepted")
	}
}

func TestQuantizeAndEvaluate(t *testing.T) {
	c, train := trainSmall(t)
	q, err := c.Quantize(train[:30])
	if err != nil {
		t.Fatal(err)
	}
	frames := GenerateFrames(3, 4, 1, 3)
	ev, err := c.Evaluate(frames)
	if err != nil {
		t.Fatal(err)
	}
	evQ, err := q.Evaluate(frames)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MSE < ev.MAE-1e-9 || evQ.MSE < evQ.MAE-1e-9 {
		t.Error("MSE must be at least MAE")
	}
	if _, err := c.Evaluate(nil); err == nil {
		t.Error("empty frames accepted")
	}
}

func TestClassifyClusterAndMetrics(t *testing.T) {
	c, train := trainSmall(t)
	// Classifier metrics on the training data must beat chance clearly.
	acc, p, r, f1 := c.EvaluateClassifier(train)
	if acc < 0.6 {
		t.Errorf("train accuracy %.3f", acc)
	}
	if p < 0 || p > 1 || r < 0 || r > 1 || f1 < 0 || f1 > 1 {
		t.Error("metrics out of range")
	}
	_ = c.ClassifyCluster(train[0].Cloud)
}

func TestSaveWeights(t *testing.T) {
	c, _ := trainSmall(t)
	var buf bytes.Buffer
	if err := c.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no weights written")
	}
}

func TestROIAndHelpers(t *testing.T) {
	xMin, xMax, yMin, yMax := ROI()
	if xMin != 12 || xMax != 35 || yMin != -2.5 || yMax != 2.5 {
		t.Errorf("ROI = %v %v %v %v", xMin, xMax, yMin, yMax)
	}
	if p := P(1, 2, 3); p.X != 1 || p.Y != 2 || p.Z != 3 {
		t.Error("P constructor")
	}
	if got := CountingAccuracy([]float64{244.1, 255.9}, []float64{250, 250}); got < 0.97 || got > 0.98 {
		t.Errorf("CountingAccuracy = %v", got)
	}
}

// TestCountDeterministicAcrossWorkers is the public determinism contract:
// same frame → same count whether clusters are classified sequentially or
// on 2 or 8 workers, and parallel evaluation reproduces sequential MAE/MSE
// exactly.
func TestCountDeterministicAcrossWorkers(t *testing.T) {
	c, _ := trainSmall(t)
	frames := GenerateFrames(5, 4, 1, 4)
	for i, f := range frames {
		want := c.CountWith(f.Cloud, CountOptions{Parallelism: 1})
		for _, workers := range []int{2, 8} {
			got := c.CountWith(f.Cloud, CountOptions{Parallelism: workers})
			if got.Count != want.Count || got.Clusters != want.Clusters {
				t.Errorf("frame %d at %d workers: count %d/%d clusters, sequential %d/%d",
					i, workers, got.Count, got.Clusters, want.Count, want.Clusters)
			}
		}
		if got := c.CountParallel(f.Cloud); got.Count != want.Count {
			t.Errorf("frame %d: CountParallel %d != sequential %d", i, got.Count, want.Count)
		}
	}

	seq, err := c.EvaluateWith(frames, CountOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := c.EvaluateWith(frames, CountOptions{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if par.MAE != seq.MAE || par.MSE != seq.MSE || par.Accuracy != seq.Accuracy {
			t.Errorf("%d workers: MAE/MSE/Acc %v/%v/%v, sequential %v/%v/%v",
				workers, par.MAE, par.MSE, par.Accuracy, seq.MAE, seq.MSE, seq.Accuracy)
		}
	}
	if par, err := c.EvaluateParallel(frames); err != nil || par.MAE != seq.MAE {
		t.Errorf("EvaluateParallel = %+v, %v; want MAE %v", par, err, seq.MAE)
	}
}

// TestConcurrentSharedCounter drives one shared Counter from 8 goroutines
// mixing Count, CountParallel, and Evaluate; run under -race this is the
// load-bearing proof that the whole inference stack shares no mutable
// state.
func TestConcurrentSharedCounter(t *testing.T) {
	c, _ := trainSmall(t)
	frames := GenerateFrames(6, 4, 1, 3)
	want := make([]int, len(frames))
	for i, f := range frames {
		want[i] = c.Count(f.Cloud).Count
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range frames {
				i := (k + g) % len(frames)
				var got Result
				switch g % 3 {
				case 0:
					got = c.Count(frames[i].Cloud)
				case 1:
					got = c.CountParallel(frames[i].Cloud)
				default:
					got = c.CountWith(frames[i].Cloud, CountOptions{Parallelism: 2})
				}
				if got.Count != want[i] {
					errs <- fmt.Errorf("goroutine %d frame %d: count %d, want %d", g, i, got.Count, want[i])
					return
				}
			}
			if g == 0 {
				if _, err := c.EvaluateParallel(frames); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err, ok := <-errs; ok {
		t.Fatal(err)
	}
}

func TestStreamMatchesCount(t *testing.T) {
	c, _ := trainSmall(t)
	frames := GenerateFrames(5, 6, 1, 4)

	in := make(chan Frame)
	go func() {
		defer close(in)
		for _, f := range frames {
			in <- f
		}
	}()
	i := 0
	for r := range c.Stream(context.Background(), in) {
		if r.Seq != uint64(i) {
			t.Errorf("result %d arrived with seq %d — out of order", i, r.Seq)
		}
		want := c.CountWith(frames[i].Cloud, CountOptions{Parallelism: 1})
		if r.Count != want.Count || r.Clusters != want.Clusters {
			t.Errorf("frame %d: streamed count=%d clusters=%d, Count gave %d/%d",
				i, r.Count, r.Clusters, want.Count, want.Clusters)
		}
		if r.E2E <= 0 || r.Latency.Total() <= 0 {
			t.Errorf("frame %d: missing latency (E2E=%v total=%v)", i, r.E2E, r.Latency.Total())
		}
		i++
	}
	if i != len(frames) {
		t.Fatalf("stream delivered %d results, want %d", i, len(frames))
	}
}

func TestStreamCancel(t *testing.T) {
	c, _ := trainSmall(t)
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan Frame) // never closed; cancelation must end the stream
	out := c.StreamWith(ctx, in, StreamOptions{QueueDepth: 1})
	in <- GenerateFrames(6, 1, 2, 3)[0]
	if _, ok := <-out; !ok {
		t.Fatal("no result before cancel")
	}
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				return // closed, as documented
			}
		case <-deadline:
			t.Fatal("stream did not close after cancel")
		}
	}
}
